"""Batch retrieve ≡ sequential retrieve (the shared-sweep read path).

Twin identically-built systems: the sequential loop runs on one, the
batch engine on the other, and every per-query ``RetrieveResult`` field
plus the network sink's message totals must match exactly — the same
contract ``test_batch_publish`` pins for the write path.  Scores match
bit-for-bit because both paths run the same vectorised index kernel.
"""

import numpy as np
import pytest

from repro.core.meteorograph import Meteorograph, MeteorographConfig, PlacementScheme
from repro.core.search import retrieve
from repro.core.search_batch import retrieve_many
from repro.overlay.idspace import KeySpace
from repro.overlay.tornado import TornadoOverlay
from repro.overload import AdmissionController, OverloadPolicy
from repro.sim.network import Network
from repro.vsm.sparse import SparseVector

DIM = 32
SPACE = KeySpace(10_000)
KW_POOL = 12  # small pool → heavy keyword overlap → co-located queries


def make_system(node_ids, capacity=None) -> Meteorograph:
    network = Network()
    overlay = TornadoOverlay(SPACE, network)
    system = Meteorograph(
        space=SPACE,
        network=network,
        overlay=overlay,
        dim=DIM,
        config=MeteorographConfig(scheme=PlacementScheme.NONE, node_capacity=capacity),
        equalizer=None,
    )
    for nid in node_ids:
        overlay.add_node(nid, capacity=capacity)
    return system


def twin_worlds(seed, *, capacity=None, n_nodes=40, n_items=60):
    """Two identically-built, identically-published systems + the rng."""
    rng = np.random.default_rng(seed)
    node_ids = sorted(rng.choice(10_000, size=n_nodes, replace=False).tolist())
    systems = (make_system(node_ids, capacity), make_system(node_ids, capacity))
    for item_id in range(n_items):
        k = int(rng.integers(1, 4))
        kws = sorted(rng.choice(KW_POOL, size=k, replace=False).tolist())
        ws = np.round(rng.uniform(0.5, 2.0, size=k), 3).tolist()
        for s in systems:
            s.publish(s.overlay.ring.at(0), item_id, kws, ws)
    return rng, systems[0], systems[1]


def random_queries(rng, n, *, dup_every=4):
    out = []
    for _ in range(n):
        k = int(rng.integers(1, 4))
        kws = rng.choice(KW_POOL, size=k, replace=False).tolist()
        ws = rng.uniform(0.5, 2.0, size=k)
        out.append(SparseVector.from_mapping(dict(zip(kws, ws)), DIM))
    if dup_every:
        for i in range(dup_every, n, dup_every):
            out[i] = out[i % dup_every]  # co-located duplicates
    return out


def snap(r):
    """Every accounting field the equivalence contract covers."""
    return (
        [(d.item_id, d.node_id, d.score, d.hops) for d in r.discoveries],
        r.route_hops,
        r.walk_hops,
        r.fetch_hops,
        r.reply_messages,
        r.visited,
        r.complete,
        r.degradation_level,
    )


def assert_equiv(seq_sys, bat_sys, origins, queries, amount, **kwargs):
    a0 = seq_sys.network.sink.count("retrieve")
    b0 = bat_sys.network.sink.count("retrieve")
    seq = [
        retrieve(seq_sys, o, q, amount, **kwargs)
        for o, q in zip(origins, queries)
    ]
    bat = retrieve_many(bat_sys, origins, queries, amount, **kwargs)
    assert [snap(r) for r in seq] == [snap(r) for r in bat]
    assert (
        seq_sys.network.sink.count("retrieve") - a0
        == bat_sys.network.sink.count("retrieve") - b0
    )
    return seq, bat


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    @pytest.mark.parametrize("amount", [1, 3, None])
    def test_mixed_storm(self, seed, amount):
        rng, a, b = twin_worlds(seed)
        queries = random_queries(rng, 24)
        origins = [a.random_origin(rng) for _ in queries]
        assert_equiv(a, b, origins, queries, amount, patience=6)

    @pytest.mark.parametrize("seed", [2, 11])
    def test_displacement_spread_worlds(self, seed):
        """capacity=1 spreads same-key items over neighbors, so walks are
        long and per-item hop counts vary along them."""
        rng, a, b = twin_worlds(seed, capacity=1, n_items=40)
        queries = random_queries(rng, 16)
        origins = [a.random_origin(rng) for _ in queries]
        seq, _ = assert_equiv(a, b, origins, queries, None, patience=10)
        assert any(r.walk_hops > 2 for r in seq)

    def test_shared_origin_duplicates_replay(self):
        """Duplicate (origin, content) queries must charge full price."""
        rng, a, b = twin_worlds(3)
        q = random_queries(rng, 1, dup_every=0)[0]
        origin = a.random_origin(rng)
        queries, origins = [q] * 10, [origin] * 10
        seq, bat = assert_equiv(a, b, origins, queries, 3)
        assert all(snap(r) == snap(seq[0]) for r in seq)
        # The replayed copies are independent objects.
        assert bat[0].discoveries is not bat[1].discoveries

    def test_distinct_contents_sharing_home(self):
        """Different query vectors landing on one home share its sweep."""
        rng, a, b = twin_worlds(5)
        base = random_queries(rng, 6, dup_every=0)
        # Same keyword sets with different weights → nearby/equal keys.
        queries = base + [
            SparseVector.from_mapping(
                dict(zip(q.indices.tolist(), (q.values * 1.001).tolist())), DIM
            )
            for q in base
        ]
        origins = [a.random_origin(rng) for _ in queries]
        assert_equiv(a, b, origins, queries, None, patience=6)


class TestWalkModes:
    def test_wraparound_homes(self):
        """Homes at the extremes of the key space: the half-circle walk
        order must match, including the no-wrap stop."""
        rng, a, b = twin_worlds(9)
        queries = random_queries(rng, 6, dup_every=0)
        origins = [a.random_origin(rng) for _ in queries]
        for start_key in (0, 1, SPACE.modulus - 1, SPACE.modulus // 2):
            assert_equiv(
                a, b, origins, queries, None, patience=4, start_key=start_key
            )

    @pytest.mark.parametrize("direction", ["up", "down"])
    def test_directional_sweeps(self, direction):
        rng, a, b = twin_worlds(13)
        queries = random_queries(rng, 8)
        origins = [a.random_origin(rng) for _ in queries]
        for start_key in (120, 5000, 9800):
            assert_equiv(
                a, b, origins, queries, None,
                patience=3, start_key=start_key, direction=direction,
            )

    @pytest.mark.parametrize("max_walk", [0, 1, 5])
    def test_max_walk_cap(self, max_walk):
        rng, a, b = twin_worlds(17)
        queries = random_queries(rng, 10)
        origins = [a.random_origin(rng) for _ in queries]
        for amount in (2, None):
            assert_equiv(
                a, b, origins, queries, amount, patience=4, max_walk=max_walk
            )

    def test_require_all_and_min_score(self):
        rng, a, b = twin_worlds(21)
        queries = random_queries(rng, 8)
        origins = [a.random_origin(rng) for _ in queries]
        kw = int(queries[0].indices[0])
        assert_equiv(
            a, b, origins, queries, None,
            patience=6, require_all=[kw], min_score=0.2,
        )


class TestFallbacks:
    def _storm(self, system, origins, queries, amount):
        out = []
        for o, q in zip(origins, queries):
            out.append(system.retrieve(o, q, amount))
        return out

    def test_degraded_shed_home_equivalence(self):
        """With admission control the engine must fall back to the exact
        sequential loop — shedding/diversion state evolves identically,
        so even degraded results match query for query."""
        rng, a, b = twin_worlds(31)
        policy = OverloadPolicy(service_rate=1e-9, queue_cap=2, breaker_threshold=4)
        for s in (a, b):
            s.network.attach_admission(AdmissionController(policy))
        queries = random_queries(rng, 20)
        origins = [a.random_origin(rng) for _ in queries]
        seq = [retrieve(a, o, q, 2) for o, q in zip(origins, queries)]
        bat = retrieve_many(b, origins, queries, 2)
        assert [snap(r) for r in seq] == [snap(r) for r in bat]
        assert any(r.degraded for r in bat)  # the storm really shed

    def test_retry_policy_falls_back(self):
        import dataclasses

        from repro.maint.retry import RetryPolicy

        rng, a, b = twin_worlds(33)
        for s in (a, b):
            s.config = dataclasses.replace(s.config, retry_policy=RetryPolicy())
        queries = random_queries(rng, 8)
        origins = [a.random_origin(rng) for _ in queries]
        assert_equiv(a, b, origins, queries, 2)


class TestValidation:
    def test_bad_arguments(self):
        _, a, _ = twin_worlds(1, n_nodes=4, n_items=2)
        q = SparseVector.from_mapping({1: 1.0}, DIM)
        with pytest.raises(ValueError):
            retrieve_many(a, 0, [q], amount=0)
        with pytest.raises(ValueError):
            retrieve_many(a, 0, [q], amount=1, patience=0)
        with pytest.raises(ValueError):
            retrieve_many(a, [1, 2], [q], amount=1)

    def test_empty_batch(self):
        _, a, _ = twin_worlds(1, n_nodes=4, n_items=2)
        assert retrieve_many(a, 0, [], amount=1) == []

    def test_batch_span_and_metrics(self):
        from repro.obs import Observability

        obs = Observability()
        rng = np.random.default_rng(41)
        node_ids = sorted(rng.choice(10_000, size=20, replace=False).tolist())
        network = Network(obs=obs)
        overlay = TornadoOverlay(SPACE, network)
        system = Meteorograph(
            space=SPACE, network=network, overlay=overlay, dim=DIM,
            config=MeteorographConfig(scheme=PlacementScheme.NONE),
            equalizer=None,
        )
        for nid in node_ids:
            overlay.add_node(nid)
        system.publish(node_ids[0], 1, [3, 5], [1.0, 2.0])
        queries = random_queries(rng, 6)
        retrieve_many(system, node_ids[0], queries, 1)
        assert obs.tracer.depth == 0
        assert any(s.kind == "retrieve_batch" for s in obs.tracer.roots)
        ms = obs.metrics.snapshot()
        assert ms["counters"]["retrieve.batch.queries"] == 6
        assert "kernel.retrieve_batch" in ms["timers"]


class TestFacade:
    def test_use_first_hop_bucketing(self):
        """Facade batching with first-hop start keys must equal the
        sequential facade path query for query."""
        rng = np.random.default_rng(51)
        trace_items = 200
        from repro.workload import WorldCupParams, generate_trace

        trace = generate_trace(
            WorldCupParams(n_items=trace_items, n_keywords=120), seed=8
        )
        sample_ids = np.sort(rng.choice(trace_items, 40, replace=False))
        systems = []
        for _ in range(2):
            systems.append(
                Meteorograph.build(
                    50,
                    trace.corpus.dim,
                    rng=np.random.default_rng(5),
                    sample=trace.corpus.subsample(sample_ids),
                    config=MeteorographConfig(scheme=PlacementScheme.UNUSED_HASH),
                )
            )
            systems[-1].publish_corpus(trace.corpus, np.random.default_rng(3))
        a, b = systems
        queries = []
        for _ in range(12):
            iid = int(rng.integers(0, trace_items))
            queries.append(trace.corpus.vector(iid))
        origins = [a.random_origin(rng) for _ in queries]
        seq = [
            a.retrieve(o, q, 2, use_first_hop=True)
            for o, q in zip(origins, queries)
        ]
        bat = b.retrieve_many(origins, queries, 2, use_first_hop=True)
        assert [snap(r) for r in seq] == [snap(r) for r in bat]
