"""Unit tests for soft-state republish and expiry (§3.6)."""

import numpy as np
import pytest

from repro.core.meteorograph import Meteorograph, MeteorographConfig, PlacementScheme
from repro.core.softstate import SoftStateManager
from repro.overlay.idspace import KeySpace
from repro.overlay.tornado import TornadoOverlay
from repro.sim.engine import Simulator
from repro.sim.network import Network

SPACE = KeySpace(1 << 16)
NODES = list(range(0, 1 << 16, (1 << 16) // 24))


def make_system(replication=1):
    sim = Simulator()
    network = Network(simulator=sim)
    overlay = TornadoOverlay(SPACE, network)
    system = Meteorograph(
        space=SPACE,
        network=network,
        overlay=overlay,
        dim=16,
        config=MeteorographConfig(
            scheme=PlacementScheme.NONE, replication_factor=replication
        ),
        equalizer=None,
    )
    for nid in NODES:
        overlay.add_node(nid)
    return system, sim


class TestValidation:
    def test_interval_must_beat_ttl(self):
        system, _ = make_system()
        with pytest.raises(ValueError):
            SoftStateManager(system, ttl=10.0, republish_interval=10.0)
        with pytest.raises(ValueError):
            SoftStateManager(system, ttl=0, republish_interval=1)


class TestPublishAndExpiry:
    def test_publish_registers_ownership(self):
        system, _ = make_system()
        mgr = SoftStateManager(system, ttl=30, republish_interval=10)
        res = mgr.publish(NODES[0], 1, [2, 3], [1.0, 1.0])
        assert res.success
        assert mgr.live_items() == 1
        assert mgr.orphaned_items() == 0

    def test_unrefreshed_item_expires(self):
        system, sim = make_system()
        mgr = SoftStateManager(system, ttl=10, republish_interval=3)
        mgr.publish(NODES[0], 1, [2], [1.0])
        sim.run(until=11.0)  # no republish scheduled — item goes stale
        purged = mgr.expire_stale()
        assert purged == 1
        assert mgr.live_items() == 0
        assert system.network.total_items() == 0

    def test_refresh_extends_lifetime(self):
        system, sim = make_system()
        mgr = SoftStateManager(system, ttl=10, republish_interval=3)
        mgr.publish(NODES[0], 1, [2], [1.0])
        sim.run(until=8.0)
        assert mgr.republish_all() == 1
        sim.run(until=12.0)  # past original deadline but refreshed at t=8
        assert mgr.expire_stale() == 0
        assert system.network.total_items() == 1

    def test_dead_owner_item_orphans_then_expires(self):
        system, sim = make_system()
        mgr = SoftStateManager(system, ttl=10, republish_interval=3)
        mgr.publish(NODES[0], 1, [2], [1.0])
        system.network.node(NODES[0]).fail()
        assert mgr.orphaned_items() == 1
        assert mgr.republish_all() == 0  # dead owners do not refresh
        sim.run(until=11.0)
        assert mgr.expire_stale() == 1

    def test_republish_purges_superseded_copies(self):
        system, sim = make_system(replication=3)
        mgr = SoftStateManager(system, ttl=30, republish_interval=5)
        mgr.publish(NODES[0], 1, [2], [1.0])
        copies_before = sum(
            1 for n in system.network.nodes() if n.has_item(1)
        )
        mgr.republish_all()
        copies_after = sum(1 for n in system.network.nodes() if n.has_item(1))
        assert copies_after == copies_before  # superseded, not duplicated


class TestRecovery:
    def test_republish_rehomes_after_home_failure(self):
        system, sim = make_system()
        mgr = SoftStateManager(system, ttl=30, republish_interval=5)
        mgr.publish(NODES[3], 1, [2], [1.0])
        holder = next(n.node_id for n in system.network.nodes() if n.has_item(1))
        system.network.node(holder).fail()
        system.overlay.stabilize()
        assert mgr.republish_all() == 1
        new_holder = [
            n.node_id
            for n in system.network.nodes()
            if n.alive and n.has_item(1)
        ]
        assert new_holder and new_holder[0] != holder
        res = system.find(NODES[3], 1)
        assert res.found

    def test_scheduled_soft_state_keeps_items_alive(self):
        system, sim = make_system()
        mgr = SoftStateManager(system, ttl=12, republish_interval=4)
        for i in range(5):
            mgr.publish(NODES[i], i, [2 + i], [1.0])
        mgr.schedule()
        sim.run(until=50.0)
        assert mgr.live_items() == 5
        assert system.network.total_items() == 5
        assert mgr.republished >= 5 * 10  # ~12 rounds of 5 items

    def test_schedule_requires_simulator(self):
        network = Network()  # no simulator
        overlay = TornadoOverlay(SPACE, network)
        system = Meteorograph(
            space=SPACE, network=network, overlay=overlay, dim=16,
            config=MeteorographConfig(scheme=PlacementScheme.NONE),
            equalizer=None,
        )
        mgr = SoftStateManager(system, ttl=10, republish_interval=3)
        with pytest.raises(RuntimeError):
            mgr.schedule()
