"""X-CHAOS harness: the fault-mix grid is green at tiny scale."""

import pytest

from repro.experiments import run_chaos
from repro.experiments.chaos import FAULT_MIXES, chaos_cell
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=600, n_keywords=200), seed=31)


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def rowset(self, trace):
        return run_chaos(
            trace, n_nodes=80, horizon=15.0, quiesce=10.0, queries=80, seed=3
        )

    def test_one_row_per_mix(self, rowset):
        assert rowset.column("mix") == [m[0] for m in FAULT_MIXES]

    def test_invariants_hold_in_every_cell(self, rowset):
        for col in ("reachability", "replicas", "accounting", "holder_index"):
            assert rowset.column(col) == [1] * len(FAULT_MIXES), col

    def test_baseline_is_lossless(self, rowset):
        row = dict(zip(rowset.headers, rowset.rows[0]))
        assert row["mix"] == "baseline"
        assert row["availability"] == 1.0
        assert row["lost"] == 0

    def test_partition_cells_exercise_anti_entropy(self, rowset):
        by_mix = {r[0]: dict(zip(rowset.headers, r)) for r in rowset.rows}
        assert by_mix["partition"]["healed_replaced"] > 0
        assert by_mix["loss"]["healed_replaced"] == 0  # nothing to heal


class TestChaosCell:
    def test_cell_is_deterministic(self, trace):
        def run():
            cell = chaos_cell(
                trace, n_nodes=60, drop=0.1, dup=0.1, jitter=0.5, split=True,
                churn=0.0, horizon=12.0, quiesce=8.0, queries=50, seed=17,
            )
            return (cell["availability"], cell["replaced"], cell["plane"])

        assert run() == run()

    def test_loss_probes_stay_available(self, trace):
        cell = chaos_cell(
            trace, n_nodes=60, drop=0.05, split=False, churn=0.0,
            horizon=12.0, quiesce=8.0, queries=50, seed=5,
        )
        assert cell["all_ok"]
        assert cell["availability"] >= 0.85  # the CI gate's floor
