"""Tests for the continuous-churn experiment."""

import pytest

from repro.experiments.churn import run_churn
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=800, n_keywords=300), seed=77)


class TestChurn:
    def test_repair_sustains_availability(self, trace):
        rs = run_churn(
            trace, n_nodes=150, replicas=4, depart_rate=1.0,
            repair_interval=5.0, horizon=60.0, sample_every=20.0,
            queries_per_sample=60,
        )
        assert len(rs.rows) == 3
        final = rs.rows[-1]
        assert final[1] > 20  # meaningful churn actually happened
        assert final[2] >= 0.8

    def test_without_repair_availability_decays_more(self, trace):
        kwargs = dict(
            trace=trace, n_nodes=150, replicas=2, depart_rate=1.5,
            repair_interval=5.0, horizon=80.0, sample_every=40.0,
            queries_per_sample=80, seed=99,
        )
        with_r = run_churn(with_repair=True, **kwargs)
        without = run_churn(with_repair=False, **kwargs)
        assert with_r.rows[-1][2] >= without.rows[-1][2]

    def test_rows_time_ordered(self, trace):
        rs = run_churn(
            trace, n_nodes=100, replicas=2, horizon=40.0, sample_every=10.0,
            queries_per_sample=20,
        )
        times = rs.column("time")
        assert times == sorted(times)
