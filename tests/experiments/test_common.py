"""Unit tests for shared experiment plumbing."""

import numpy as np
import pytest

from repro.core import PlacementScheme
from repro.experiments.common import (
    SCHEME_LABELS,
    RowSet,
    build_system,
    default_trace,
    sample_of,
    scale_factor,
    timer,
)
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=400, n_keywords=150), seed=3)


class TestScaleFactor:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0
        assert scale_factor(0.5) == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5


class TestDefaultTrace:
    def test_scaled_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        tr = default_trace()
        assert tr.corpus.n_items == 1000

    def test_floor_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        tr = default_trace()
        assert tr.corpus.n_items >= 200


class TestSampleOf:
    def test_fraction(self, trace, rng):
        s = sample_of(trace.corpus, rng, fraction=0.5, minimum=1)
        assert s.n_items == 200

    def test_minimum_floor(self, trace, rng):
        s = sample_of(trace.corpus, rng, fraction=0.001, minimum=64)
        assert s.n_items == 64

    def test_never_exceeds_corpus(self, trace, rng):
        s = sample_of(trace.corpus, rng, fraction=0.001, minimum=10_000)
        assert s.n_items == trace.corpus.n_items


class TestBuildSystem:
    def test_capacity_multiple(self, trace, rng):
        system = build_system(
            trace, 40, PlacementScheme.UNUSED_HASH_HOT, rng=rng,
            capacity_multiple=2.0,
        )
        expected = int(round(2.0 * trace.corpus.n_items / 40))
        node = next(system.network.nodes())
        assert node.capacity == expected

    def test_infinite_capacity_by_default(self, trace, rng):
        system = build_system(trace, 20, PlacementScheme.NONE, rng=rng)
        node = next(system.network.nodes())
        assert node.capacity is None

    def test_overrides_forwarded(self, trace, rng):
        system = build_system(
            trace, 20, PlacementScheme.NONE, rng=rng, directory_pointers=True
        )
        assert system.config.directory_pointers


class TestLabelsAndTimer:
    def test_labels_cover_all_schemes(self):
        assert set(SCHEME_LABELS) == set(PlacementScheme)
        assert SCHEME_LABELS[PlacementScheme.NONE] == "None"

    def test_timer_stamps_elapsed(self):
        rs = RowSet("t", ("a",))
        with timer(rs):
            sum(range(1000))
        assert rs.elapsed_s > 0
