"""Experiment-harness tests: every run_* produces a sane RowSet at tiny
scale, and the headline *shape* claims of the paper hold."""

import numpy as np
import pytest

from repro.core import PlacementScheme
from repro.experiments import (
    RowSet,
    format_table,
    load_cdf_at,
    occupancy_stats,
    run_crossover,
    run_design_ablation,
    run_failures,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10a,
    run_fig10b,
    run_firsthop_ablation,
    run_overlay_ablation,
    run_table1,
)
from repro.overlay.idspace import KeySpace
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=1500, n_keywords=400), seed=31)


class TestRowSet:
    def test_add_checks_width(self):
        rs = RowSet("x", ("a", "b"))
        rs.add(1, 2)
        with pytest.raises(ValueError):
            rs.add(1)

    def test_column(self):
        rs = RowSet("x", ("a", "b"))
        rs.add(1, 2)
        rs.add(3, 4)
        assert rs.column("b") == [2, 4]

    def test_format_table_renders(self):
        rs = RowSet("demo", ("col",))
        rs.add(1.23456)
        text = format_table(rs)
        assert "demo" in text and "1.235" in text


class TestHelpers:
    def test_occupancy_stats_detects_skew(self):
        space = KeySpace(100_000)
        rng = np.random.default_rng(0)
        skew = rng.integers(50_000, 51_000, size=1000)
        occ = occupancy_stats(skew, space, mass=0.85)
        assert occ["space_fraction"] < 0.02
        uniform = rng.integers(0, 100_000, size=1000)
        assert occupancy_stats(uniform, space, mass=0.85)["space_fraction"] > 0.5

    def test_load_cdf_at(self):
        loads = np.array([0, 1, 2, 4, 100])
        cdf = load_cdf_at(loads, 1.0, multiples=(1.0, 4.0))
        assert cdf == [pytest.approx(0.4), pytest.approx(0.8)]


class TestWorkloadExperiments:
    def test_table1(self, trace):
        rs = run_table1(trace)
        assert len(rs.rows) == 5
        assert "scale_vs_paper" in rs.notes

    def test_fig6_profile_decreasing(self, trace):
        rs = run_fig6(trace, points=10)
        sizes = rs.column("objects accessed")
        assert sizes == sorted(sizes, reverse=True)


class TestKeyCdfExperiments:
    def test_fig3_shows_heavy_skew(self, trace):
        rs = run_fig3(trace)
        # The paper's headline: the bulk of items in a tiny space slice.
        assert rs.notes["space_fraction_for_85pct"] < 0.05

    def test_fig4_flattens(self, trace):
        rs3 = run_fig3(trace)
        rs4 = run_fig4(trace)
        assert rs4.notes["space_fraction_for_85pct"] > 5 * rs3.notes["space_fraction_for_85pct"]


class TestRoutingExperiments:
    def test_fig7_hops_scale_logarithmically(self, trace):
        rs = run_fig7(
            trace, node_counts=(64, 256), queries=60,
            schemes=(PlacementScheme.UNUSED_HASH_HOT,),
        )
        hops = rs.column("mean hops")
        ns = rs.column("N")
        assert hops[1] > hops[0]  # grows with N
        assert hops[1] < hops[0] * (ns[1] / ns[0]) ** 0.5  # far sublinear

    def test_fig8_none_scheme_is_skewed(self, trace):
        rs = run_fig8(trace, n_nodes=100)
        by_scheme = {row[0]: row for row in rs.rows}
        none_row = by_scheme["None"]
        hot_row = by_scheme["Unused Hash Space + Hot Regions"]
        # Max load/c: None catastrophically worse than the optimized scheme.
        assert none_row[-1] > 3 * hot_row[-1]

    def test_fig9_balancing_preserves_retrieval(self, trace):
        rs = run_fig9(trace, n_nodes=100, queries=80)
        by_scheme = {row[0]: row for row in rs.rows}
        none_total = by_scheme["None"][2]
        hot_total = by_scheme["Unused Hash Space + Hot Regions"][2]
        assert none_total > 2 * hot_total
        # Optimized: home hit rate high.
        assert by_scheme["Unused Hash Space + Hot Regions"][4] > 0.5


class TestSimilarityExperiments:
    def test_fig10a_recall_near_total(self, trace):
        rs = run_fig10a(trace, n_nodes=120, ranks=(1, 2))
        for recall in rs.column("recall"):
            assert recall >= 0.9

    def test_fig10b_messages_grow_with_k(self, trace):
        rs = run_fig10b(trace, n_nodes=120, k_values=(4, 16, 64))
        msgs = rs.column("messages")
        assert msgs[0] < msgs[-1]


class TestFailureExperiment:
    def test_availability_monotone_in_replicas(self, trace):
        rs = run_failures(
            trace, n_nodes=120, replica_counts=(1, 4),
            fail_fractions=(0.5,), queries=120,
        )
        avail = {row[0]: row[2] for row in rs.rows}
        assert avail[4] > avail[1]

    def test_availability_decreasing_in_failures(self, trace):
        rs = run_failures(
            trace, n_nodes=120, replica_counts=(2,),
            fail_fractions=(0.1, 0.9), queries=120,
        )
        avail = rs.column("availability")
        assert avail[0] > avail[1]


class TestBaselinesAndAblations:
    def test_crossover_meteorograph_beats_flood_for_small_k(self, trace):
        rs = run_crossover(trace, n_nodes=150, k_values=(4,))
        row = rs.rows[0]
        met, gnut = row[1], row[2]
        assert met < gnut

    def test_overlay_ablation_rows(self, trace):
        rs = run_overlay_ablation(trace, n_nodes=100, queries=40)
        kinds = rs.column("overlay")
        assert kinds == ["tornado", "chord"]
        for recall in rs.column("keyword recall"):
            assert recall > 0.5

    def test_design_ablation_has_baseline_first(self, trace):
        rs = run_design_ablation(trace, n_nodes=80, queries=30)
        assert rs.rows[0][0].startswith("baseline")
        assert len(rs.rows) == 7

    def test_firsthop_ablation_shows_walk_mode_effect(self, trace):
        rs = run_firsthop_ablation(trace, n_nodes=80, patience=4)
        assert len(rs.rows) == 8
        walk = {(r[1], r[2]): r[3] for r in rs.rows if r[0] == "walk"}
        # With a tight patience, first-hop must not be worse, and for at
        # least one rank strictly better.
        assert all(walk[("on", rank)] >= walk[("off", rank)] for rank in (1, 4))

    def test_join_cost_scales_logarithmically(self, trace):
        from repro.experiments.maintenance import run_join_cost

        rs = run_join_cost(trace, node_counts=(32, 256))
        costs = rs.column("mean join msgs (last half)")
        ns = rs.column("N")
        assert costs[1] > costs[0]  # grows with N
        assert costs[1] < costs[0] * (ns[1] / ns[0]) ** 0.5  # far sublinear

    def test_proximity_experiment_rows(self):
        from repro.experiments.proximity import run_proximity

        rs = run_proximity(n_nodes=120, queries=80)
        assert [r[0] for r in rs.rows] == ["prefix-first", "proximity-aware"]
