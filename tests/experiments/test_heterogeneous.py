"""Tests for the heterogeneous-capacity and conjunction experiments."""

import math

import pytest

from repro.experiments.heterogeneous import run_conjunctions, run_heterogeneous
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=1200, n_keywords=350), seed=21)


class TestHeterogeneous:
    def test_load_follows_capacity(self, trace):
        rs = run_heterogeneous(trace, n_nodes=120, capacity_multiple=2.0)
        by_profile = {row[0]: row for row in rs.rows}
        corr = by_profile["pareto"][1]
        assert corr > 0.5  # displacement shifts load onto capable peers

    def test_no_node_over_capacity(self, trace):
        rs = run_heterogeneous(trace, n_nodes=120, capacity_multiple=2.0)
        for row in rs.rows:
            assert row[3] <= 1.0 + 1e-9  # p99 utilisation within capacity

    def test_homogeneous_correlation_is_nan(self, trace):
        rs = run_heterogeneous(trace, n_nodes=100)
        by_profile = {row[0]: row for row in rs.rows}
        assert math.isnan(by_profile["homogeneous"][1])


class TestConjunctions:
    def test_recall_high_at_every_size(self, trace):
        rs = run_conjunctions(trace, n_nodes=120, sizes=(1, 3), queries_per_size=4)
        for row in rs.rows:
            assert row[1] >= 0.9

    def test_matching_sets_shrink_with_size(self, trace):
        rs = run_conjunctions(trace, n_nodes=120, sizes=(1, 4), queries_per_size=4)
        totals = rs.column("mean matching items")
        assert totals[0] > totals[-1]
