"""Tests for the query-load fairness experiment and the gini helper."""

import numpy as np
import pytest

from repro.analysis import gini
from repro.experiments.queryload import run_query_load
from repro.workload import WorldCupParams, generate_trace


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_single_holder_approaches_one(self):
        g = gini([0] * 99 + [100])
        assert g == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # For [0, 1]: G = 0.5.
        assert gini([0, 1]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))

    def test_all_zero_is_zero(self):
        assert gini([0, 0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([-1, 2])


class TestQueryLoad:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WorldCupParams(n_items=1000, n_keywords=300), seed=88)

    def test_both_modes_reported(self, trace):
        rs = run_query_load(trace, n_nodes=100, keyword_queries=12, item_queries=30)
        assert [r[0] for r in rs.rows] == ["pointers", "walk"]
        for row in rs.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0
            assert row[3] > 0

    def test_pointer_mode_concentrates_search_traffic(self, trace):
        rs = run_query_load(trace, n_nodes=100, keyword_queries=16, item_queries=10)
        by_mode = {row[0]: row for row in rs.rows}
        # Pointer aggregation ⇒ higher concentration of query handling.
        assert by_mode["pointers"][2] >= by_mode["walk"][2] - 0.05
