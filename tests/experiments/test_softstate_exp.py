"""Tests for the soft-state churn experiment."""

import pytest

from repro.experiments.softstate_exp import run_softstate
from repro.workload import WorldCupParams, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorldCupParams(n_items=600, n_keywords=200), seed=13)


class TestSoftState:
    def test_republish_never_hurts_availability(self, trace):
        rs = run_softstate(
            trace, n_nodes=120, n_items=150, replicas=2,
            depart_rate=1.5, horizon=40.0,
            republish_intervals=(5.0, 1e9), queries=80,
        )
        by_label = {row[0]: row for row in rs.rows}
        assert by_label["5"][1] >= by_label["off"][1] - 0.02

    def test_republish_costs_messages(self, trace):
        rs = run_softstate(
            trace, n_nodes=100, n_items=100, replicas=2,
            depart_rate=0.5, horizon=30.0,
            republish_intervals=(5.0, 1e9), queries=50,
        )
        by_label = {row[0]: row for row in rs.rows}
        assert by_label["5"][2] > 2 * by_label["off"][2]

    def test_orphans_accumulate_without_republish(self, trace):
        rs = run_softstate(
            trace, n_nodes=100, n_items=120, replicas=2,
            depart_rate=2.0, horizon=40.0,
            republish_intervals=(1e9,), queries=40,
        )
        assert rs.rows[0][3] > 0
