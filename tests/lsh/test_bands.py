"""CosineLshScheme — determinism and key-layout contracts.

The subsystem's load-bearing promises (ISSUE 8, satellite c):

* same seed → same hyperplanes and same keys, across independently
  constructed instances (i.e. across processes — construction has no
  hidden global state);
* the signature pass is bit-identical across chunk sizes and worker
  counts (the ``core/angles.py`` row-chunk contract, extended);
* every band's keys land inside that band's disjoint key-space region;
* the scalar ``keys_for`` path agrees with the vectorised
  ``corpus_to_keys`` path on the buckets that matter.
"""

import numpy as np
import pytest

from repro.lsh import CosineLshScheme
from repro.overlay.idspace import KeySpace
from repro.workload import WorldCupParams, generate_trace

N_ITEMS = 400
SPACE = KeySpace()


@pytest.fixture(scope="module")
def corpus():
    return generate_trace(
        WorldCupParams(n_items=N_ITEMS, n_keywords=200), seed=77
    ).corpus


def make_scheme(corpus, **kwargs):
    kwargs.setdefault("bands", 4)
    kwargs.setdefault("band_bits", 6)
    kwargs.setdefault("seed", 9)
    return CosineLshScheme(SPACE, corpus.dim, **kwargs)


class TestDeterminism:
    def test_same_seed_same_hyperplanes(self, corpus):
        a = make_scheme(corpus)
        b = make_scheme(corpus)
        assert np.array_equal(a.hyperplanes, b.hyperplanes)

    def test_same_seed_same_keys(self, corpus):
        a = make_scheme(corpus)
        b = make_scheme(corpus)
        _, ka = a.corpus_to_keys(corpus)
        _, kb = b.corpus_to_keys(corpus)
        assert np.array_equal(ka, kb)

    def test_different_seeds_differ(self, corpus):
        a = make_scheme(corpus, seed=9)
        b = make_scheme(corpus, seed=10)
        assert not np.array_equal(a.hyperplanes, b.hyperplanes)
        _, ka = a.corpus_to_keys(corpus)
        _, kb = b.corpus_to_keys(corpus)
        assert not np.array_equal(ka, kb)

    def test_band_streams_independent(self, corpus):
        # The double-splitmix mix must not alias (seed, band) pairs:
        # no two bands of one scheme may share a hyperplane block.
        s = make_scheme(corpus)
        k = s.band_bits
        blocks = [s.hyperplanes[b * k : (b + 1) * k] for b in range(s.bands)]
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                assert not np.array_equal(blocks[i], blocks[j])


class TestChunkInvariance:
    def test_signatures_chunk_sweep(self, corpus):
        s = make_scheme(corpus)
        whole = s.signatures(corpus)
        assert whole.shape == (N_ITEMS, s.bands)
        assert whole.dtype == np.int64
        for chunk in (1, 7, 64, 100, N_ITEMS, N_ITEMS + 1, 10**6):
            chunked = s.signatures(corpus, chunk_rows=chunk)
            assert np.array_equal(whole, chunked), f"chunk_rows={chunk}"

    def test_signatures_process_pool(self, corpus):
        s = make_scheme(corpus)
        whole = s.signatures(corpus)
        pooled = s.signatures(corpus, chunk_rows=64, workers=2)
        assert np.array_equal(whole, pooled)

    def test_corpus_to_keys_chunk_invariant(self, corpus):
        s = make_scheme(corpus)
        a_whole, k_whole = s.corpus_to_keys(corpus)
        a_chunk, k_chunk = s.corpus_to_keys(corpus, chunk_rows=33)
        assert np.array_equal(a_whole, a_chunk)
        assert np.array_equal(k_whole, k_chunk)

    def test_invalid_chunk_rows(self, corpus):
        with pytest.raises(ValueError, match="chunk_rows"):
            make_scheme(corpus).signatures(corpus, chunk_rows=0)

    def test_dim_mismatch_rejected(self, corpus):
        s = CosineLshScheme(SPACE, corpus.dim + 1, bands=2, band_bits=4)
        with pytest.raises(ValueError, match="dim"):
            s.signatures(corpus)


class TestKeyLayout:
    def test_keys_within_band_regions(self, corpus):
        s = make_scheme(corpus)
        _, keys = s.corpus_to_keys(corpus)
        for b in range(s.bands):
            lo, hi = b * s.region, (b + 1) * s.region
            assert keys[:, b].min() >= lo
            assert keys[:, b].max() < hi

    def test_bucket_alignment(self, corpus):
        s = make_scheme(corpus)
        _, keys = s.corpus_to_keys(corpus)
        assert np.all((keys - s._band_offsets) % s.bucket_width == 0)

    def test_scalar_matches_vectorised(self, corpus):
        # keys_for (per-item scalar path) must bucket identically to the
        # corpus kernel.  Float reduction order differs between the two
        # dot products, so compare buckets, not raw projections — and
        # assert the angle key exactly (same scalar pipeline).
        s = make_scheme(corpus)
        angle_keys, key_mat = s.corpus_to_keys(corpus)
        mat = corpus.matrix
        for i in range(0, N_ITEMS, 37):
            kw = mat.indices[mat.indptr[i] : mat.indptr[i + 1]]
            w = mat.data[mat.indptr[i] : mat.indptr[i + 1]]
            angle_key, pkeys = s.keys_for(kw, w)
            assert angle_key == angle_keys[i]
            assert pkeys == key_mat[i].tolist()

    def test_probe_keys_match_publish_keys(self, corpus):
        # A corpus row used as a query must probe its own buckets.
        s = make_scheme(corpus)
        _, key_mat = s.corpus_to_keys(corpus)
        for i in (0, N_ITEMS // 2, N_ITEMS - 1):
            assert s.probe_keys_for(corpus.vector(i)) == key_mat[i].tolist()

    def test_empty_vector_gets_zero_signature(self, corpus):
        s = make_scheme(corpus)
        angle_key, pkeys = s.keys_for(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64)
        )
        assert pkeys == s._band_offsets.tolist()

    def test_n_keys_is_bands(self, corpus):
        assert make_scheme(corpus, bands=5).n_keys == 5


class TestValidation:
    def test_bad_params_rejected(self, corpus):
        for kwargs in (
            {"bands": 0},
            {"band_bits": 0},
            {"seed": -1},
        ):
            with pytest.raises(ValueError):
                make_scheme(corpus, **kwargs)
        with pytest.raises(ValueError, match="dim"):
            CosineLshScheme(SPACE, 0)

    def test_region_must_hold_buckets(self):
        # modulus 1024 / 4 bands = 256-key regions: 8 bits fit, 9 don't.
        small = KeySpace(1024)
        CosineLshScheme(small, 16, bands=4, band_bits=8)
        with pytest.raises(ValueError, match="region"):
            CosineLshScheme(small, 16, bands=4, band_bits=9)
