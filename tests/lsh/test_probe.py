"""Multi-probe retrieval — scalar/batch equivalence and merge semantics.

Pins the probe engine's contracts end to end on a real published
system: the facade dispatches to multi-probe under a multi-key scheme,
the batch form is element-wise identical to the scalar loop (the
``retrieve_many`` equivalence contract lifted through the band merge),
and the merged accounting is the sequential sum of the per-band bills.
"""

import numpy as np
import pytest

from repro.core.meteorograph import Meteorograph, MeteorographConfig, PlacementScheme
from repro.core.search import retrieve
from repro.lsh import multi_probe_retrieve, multi_probe_retrieve_many
from repro.lsh.probe import _merge_bands
from repro.workload import WorldCupParams, generate_trace

N_ITEMS = 300
N_NODES = 60
BANDS = 3
WIDTH = 2


@pytest.fixture(scope="module")
def corpus():
    return generate_trace(
        WorldCupParams(n_items=N_ITEMS, n_keywords=150), seed=41
    ).corpus


def build_lsh_system(corpus, **overrides):
    fields = dict(
        scheme=PlacementScheme.NONE,
        naming_scheme="cosine-lsh",
        lsh_bands=BANDS,
        lsh_band_bits=5,
        lsh_seed=3,
        lsh_probe_width=WIDTH,
    )
    fields.update(overrides)
    cfg = MeteorographConfig(**fields)
    rng = np.random.default_rng(5)
    sample_ids = np.sort(rng.choice(corpus.n_items, 50, replace=False))
    return Meteorograph.build(
        N_NODES,
        corpus.dim,
        rng=np.random.default_rng(9),
        sample=corpus.subsample(sample_ids),
        config=cfg,
    )


@pytest.fixture(scope="module")
def system(corpus):
    s = build_lsh_system(corpus)
    s.publish_corpus(corpus, np.random.default_rng(3), batch=True)
    return s


@pytest.fixture(scope="module")
def storm(corpus):
    rng = np.random.default_rng(17)
    ids = rng.choice(corpus.n_items, 24, replace=False)
    return [corpus.vector(int(i)) for i in ids]


class TestFacadeDispatch:
    def test_retrieve_goes_multiprobe(self, system, corpus):
        q = corpus.vector(0)
        origin = system.random_origin(np.random.default_rng(1))
        direct = multi_probe_retrieve(system, origin, q, 5)
        via_facade = system.retrieve(origin, q, 5)
        assert via_facade.item_ids() == direct.item_ids()
        assert via_facade.messages == direct.messages

    def test_first_hop_rejected(self, system, corpus):
        origin = system.random_origin(np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="first-hop"):
            system.retrieve(origin, corpus.vector(0), 5, use_first_hop=True)

    def test_self_match_found(self, system, corpus):
        # A published corpus row queried verbatim collides with itself
        # in every band — the item must come back, ranked first.
        origin = system.random_origin(np.random.default_rng(2))
        for i in (1, 100, 250):
            res = system.retrieve(origin, corpus.vector(i), 5)
            assert res.discoveries
            assert res.discoveries[0].item_id == i


class TestScalarBatchEquivalence:
    def test_batch_matches_scalar_loop(self, system, storm):
        orng = np.random.default_rng(7)
        origins = [system.random_origin(orng) for _ in storm]
        scalar = [
            multi_probe_retrieve(system, o, q, 5)
            for o, q in zip(origins, storm)
        ]
        batch = multi_probe_retrieve_many(system, origins, storm, 5)
        assert len(batch) == len(scalar)
        for s, b in zip(scalar, batch):
            assert b.item_ids() == s.item_ids()
            assert b.messages == s.messages
            assert b.complete == s.complete
            for ds, db in zip(s.discoveries, b.discoveries):
                assert (ds.item_id, ds.node_id, ds.score, ds.hops) == (
                    db.item_id, db.node_id, db.score, db.hops
                )

    def test_single_origin_broadcast(self, system, storm):
        origin = system.random_origin(np.random.default_rng(11))
        scalar = [multi_probe_retrieve(system, origin, q, 3) for q in storm]
        batch = multi_probe_retrieve_many(system, origin, storm, 3)
        for s, b in zip(scalar, batch):
            assert b.item_ids() == s.item_ids()
            assert b.messages == s.messages

    def test_empty_storm(self, system):
        assert multi_probe_retrieve_many(system, 0, [], 5) == []


class TestMergeAccounting:
    def test_messages_sum_over_bands(self, system, corpus):
        # The merged bill must equal the sum of the per-band retrieves
        # the probe engine actually ran (sequential-equivalent).
        q = corpus.vector(10)
        origin = system.random_origin(np.random.default_rng(3))
        keys = system.naming.probe_keys_for(q)
        assert len(keys) == BANDS
        bands = [
            retrieve(
                system, origin, q, None,
                patience=WIDTH + 1, max_walk=WIDTH, start_key=k,
            )
            for k in keys
        ]
        merged = multi_probe_retrieve(system, origin, q, None)
        assert merged.messages == sum(r.messages for r in bands)
        assert merged.route_hops == sum(r.route_hops for r in bands)
        assert merged.walk_hops == sum(r.walk_hops for r in bands)
        assert len(merged.visited) == sum(len(r.visited) for r in bands)

    def test_each_band_visits_width_plus_one(self, system, corpus):
        # patience = width+1 with max_walk = width means every band
        # consults exactly 1 + W nodes: the bounded-budget contract the
        # frontier experiment's message model relies on.
        q = corpus.vector(20)
        origin = system.random_origin(np.random.default_rng(4))
        res = multi_probe_retrieve(system, origin, q, None)
        assert len(res.visited) == BANDS * (1 + WIDTH)

    def test_union_ranked_and_cut(self, system, corpus):
        q = corpus.vector(30)
        origin = system.random_origin(np.random.default_rng(5))
        full = multi_probe_retrieve(system, origin, q, None)
        scores = [(-d.score, d.item_id) for d in full.discoveries]
        assert scores == sorted(scores)
        assert len(set(d.item_id for d in full.discoveries)) == full.found
        cut = multi_probe_retrieve(system, origin, q, 3)
        assert cut.discoveries == full.discoveries[:3]
        assert cut.complete == (full.found >= 3)

    def test_first_band_wins_duplicates(self):
        from repro.core.search import Discovery, RetrieveResult

        a = RetrieveResult()
        a.discoveries = [Discovery(7, 100, 0.9, 2)]
        a.route_hops, a.walk_hops, a.reply_messages = 3, 2, 1
        b = RetrieveResult()
        b.discoveries = [Discovery(7, 200, 0.9, 1), Discovery(8, 200, 0.5, 1)]
        b.route_hops = 2
        merged = _merge_bands([a, b], None)
        by_id = {d.item_id: d for d in merged.discoveries}
        # Item 7's copy from band 0 wins; its hops carry no offset.
        assert by_id[7].node_id == 100
        assert by_id[7].hops == 2
        # Band 1's unique find is offset by band 0's 6 messages.
        assert by_id[8].hops == 1 + 6

    def test_probe_width_zero_home_only(self, system, corpus):
        q = corpus.vector(40)
        origin = system.random_origin(np.random.default_rng(6))
        res = multi_probe_retrieve(system, origin, q, None, probe_width=0)
        assert len(res.visited) == BANDS
        assert res.walk_hops == 0

    def test_negative_probe_width_rejected(self, system, corpus):
        with pytest.raises(ValueError, match="probe_width"):
            multi_probe_retrieve(system, 0, corpus.vector(0), 5, probe_width=-1)


class TestConfigValidation:
    def test_lsh_requires_scheme_none(self, corpus):
        with pytest.raises(ValueError, match="scheme=NONE"):
            build_lsh_system(corpus, scheme=PlacementScheme.UNUSED_HASH)

    def test_lsh_rejects_replication(self, corpus):
        with pytest.raises(ValueError, match="replication"):
            build_lsh_system(corpus, replication_factor=2)

    def test_lsh_rejects_directory_pointers(self, corpus):
        with pytest.raises(ValueError, match="directory"):
            build_lsh_system(corpus, directory_pointers=True)

    def test_unknown_scheme_name(self, corpus):
        with pytest.raises(ValueError, match="naming scheme"):
            build_lsh_system(corpus, naming_scheme="simhash")


class TestStorageBudget:
    def test_l_copies_stored(self, system):
        # Each item publishes one copy per band; same-node duplicates
        # replace, so stored ≤ L·n with equality unless buckets collide
        # on one node.
        total = system.network.total_items()
        assert total <= BANDS * N_ITEMS
        assert total > (BANDS - 1) * N_ITEMS

    def test_deterministic_rebuild(self, corpus, system):
        twin = build_lsh_system(corpus)
        twin.publish_corpus(corpus, np.random.default_rng(3), batch=True)
        a = {n.node_id: frozenset(n.item_ids())
             for n in system.network.nodes() if len(n)}
        b = {n.node_id: frozenset(n.item_ids())
             for n in twin.network.nodes() if len(n)}
        assert a == b
