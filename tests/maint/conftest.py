"""Fixtures for the fault-tolerance subsystem tests.

The equivalence tests need *twin* systems — identically seeded builds
that are then subjected to identical failures — so the builder is a
plain function (exposed as a fixture) rather than a shared instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Meteorograph, MeteorographConfig, PlacementScheme
from repro.sim.engine import Simulator


def build_replicated_system(
    trace,
    *,
    n_nodes: int = 120,
    factor: int = 3,
    seed: int = 11,
    **config_kwargs,
) -> Meteorograph:
    """A published, replicated, simulator-backed system — deterministic
    per seed, so two calls with the same arguments are exact twins."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(
        trace.corpus.n_items,
        size=max(40, trace.corpus.n_items // 10),
        replace=False,
    )
    sample = trace.corpus.subsample(np.sort(ids))
    cfg = MeteorographConfig(
        scheme=PlacementScheme.UNUSED_HASH_HOT,
        replication_factor=factor,
        **config_kwargs,
    )
    system = Meteorograph.build(
        n_nodes,
        trace.corpus.dim,
        rng=rng,
        sample=sample,
        config=cfg,
        simulator=Simulator(),
    )
    system.publish_corpus(trace.corpus, np.random.default_rng(seed + 1))
    return system


def _holders_snapshot(system) -> dict[int, tuple[int, ...]]:
    return {
        item_id: tuple(sorted(record.holders))
        for item_id, record in system.replication.records.items()
    }


@pytest.fixture(scope="session")
def build_replicated():
    """The builder function (fixture because tests/ is not a package)."""
    return build_replicated_system


@pytest.fixture(scope="session")
def holders_snapshot():
    """item id -> sorted holder ids, for placement comparisons."""
    return _holders_snapshot
