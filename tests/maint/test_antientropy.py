"""Anti-entropy healing: partition divergence is reconciled on heal.

The scenario pinned here is the one the engine exists for: items
published *during* a partition land on whichever "closest home" their
side could see; after the heal those copies are live but not where
§3.3 routing looks.  One reconcile tick must restore the reachability
invariant — and placements that fail while faults are still active
must be deferred and retried, not dropped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Meteorograph, MeteorographConfig, PlacementScheme
from repro.maint import (
    AntiEntropyEngine,
    RepairEngine,
    check_all,
    check_reachability,
)
from repro.sim.engine import Simulator
from repro.sim.linkfaults import LinkFaultPlane


def build_split_published_system(trace, *, n_nodes=120, factor=3, seed=11):
    """A replicated system with 60% of the corpus published healthy and
    40% published while a 40% partition holds — diverged on purpose.

    Returns ``(system, plane, repair, antientropy)`` with the fabric
    still split; the caller heals.
    """
    rng = np.random.default_rng(seed)
    ids = rng.choice(trace.corpus.n_items, size=max(40, trace.corpus.n_items // 10),
                     replace=False)
    sample = trace.corpus.subsample(np.sort(ids))
    cfg = MeteorographConfig(
        scheme=PlacementScheme.UNUSED_HASH_HOT, replication_factor=factor
    )
    system = Meteorograph.build(
        n_nodes, trace.corpus.dim, rng=rng, sample=sample, config=cfg,
        simulator=Simulator(),
    )
    n_items = trace.corpus.n_items
    pre = np.arange(int(0.6 * n_items), dtype=np.int64)
    mid = np.arange(int(0.6 * n_items), n_items, dtype=np.int64)
    system.publish_corpus(trace.corpus.subsample(pre), rng, item_ids=pre)

    plane = system.network.attach_link_faults(LinkFaultPlane(seed=seed))
    repair = RepairEngine(system).attach()
    antientropy = AntiEntropyEngine(system, repair).attach()

    side = sorted(system.network.alive_ids())[: int(0.4 * n_nodes)]
    system.network.partition_nodes(side)
    system.publish_corpus(trace.corpus.subsample(mid), rng, item_ids=mid)
    return system, plane, repair, antientropy


class TestWiring:
    def test_requires_replication(self, tiny_trace, build_system_fn):
        system = build_system_fn(tiny_trace)  # replication off
        with pytest.raises(ValueError):
            AntiEntropyEngine(system, repair=None)

    def test_double_attach_rejected(self, build_replicated, tiny_trace):
        system = build_replicated(trace=tiny_trace)
        repair = RepairEngine(system).attach()
        ae = AntiEntropyEngine(system, repair).attach()
        with pytest.raises(RuntimeError):
            ae.attach()

    def test_tick_without_pending_is_free(self, build_replicated, tiny_trace):
        system = build_replicated(trace=tiny_trace)
        repair = RepairEngine(system).attach()
        ae = AntiEntropyEngine(system, repair).attach()
        assert ae.tick() == 0
        assert ae.ticks == 1
        assert ae.reconcile_passes == 0


class TestHealReconciliation:
    def test_heal_queues_the_healed_side(self, tiny_trace):
        system, _, _, ae = build_split_published_system(tiny_trace)
        assert ae.pending == 0  # split alone queues nothing
        healed = system.network.heal_partition()
        assert healed > 0
        assert ae.pending == healed

    def test_one_tick_restores_reachability(self, tiny_trace):
        system, plane, repair, ae = build_split_published_system(tiny_trace)
        assert not check_reachability(system).ok  # diverged while split
        system.network.heal_partition()
        for _ in range(6):
            ae.tick()
            repair.tick()
            if not repair.dirty and not ae.pending:
                break
        assert ae.reconcile_passes >= 1
        assert ae.total_replaced > 0
        reports = check_all(system, repair=repair, plane=plane)
        assert all(r.ok for r in reports.values()), {
            k: v.samples for k, v in reports.items() if not v.ok
        }

    def test_failed_placements_are_deferred_and_retried(self, tiny_trace):
        system, plane, repair, ae = build_split_published_system(tiny_trace)
        system.network.heal_partition()
        plane.set_loss(drop_prob=1.0)  # every re-placement push is eaten
        assert ae.tick() == 0
        assert ae.pending > 0  # deferred, not dropped
        plane.set_loss()  # fabric healthy again
        assert ae.tick() > 0
        for _ in range(6):
            ae.tick()
            repair.tick()
            if not repair.dirty and not ae.pending:
                break
        assert check_reachability(system).ok

    def test_repair_ignores_partition_liveness_kind(self, tiny_trace):
        system, _, repair, _ = build_split_published_system(tiny_trace)
        # All nodes are alive during the split: the split itself must
        # not have dirtied anything in the liveness-driven engine.
        assert all(
            system.network.is_alive(nid) for nid in system.network.node_ids()
        )
