"""Chaos invariants: green on healthy state, loud on planted defects.

A harness is only as good as its ability to *fail*: each check gets
one test on an untouched system (ok) and one where the corresponding
defect is planted by hand (violation with a usable sample message).
"""

from __future__ import annotations

import pytest

from repro.maint import (
    RepairEngine,
    check_accounting,
    check_all,
    check_holder_index,
    check_reachability,
    check_replica_counts,
)
from repro.sim.linkfaults import LinkFaultPlane


@pytest.fixture()
def system(build_replicated, tiny_trace):
    return build_replicated(trace=tiny_trace, n_nodes=100, seed=21)


def _first_record(system):
    item_id = next(iter(system.replication.records))
    return item_id, system.replication.records[item_id]


class TestHealthyState:
    def test_all_green(self, system):
        repair = RepairEngine(system).attach()
        plane = system.network.attach_link_faults(LinkFaultPlane(seed=0))
        system.network.send(*list(system.network.alive_ids())[:2])
        reports = check_all(system, repair=repair, plane=plane)
        assert set(reports) == {
            "reachability", "replica_counts", "accounting", "holder_index",
        }
        assert all(r.ok for r in reports.values())
        assert reports["reachability"].checked > 0
        assert reports["holder_index"].checked > 0

    def test_unreplicated_system_vacuously_ok(self, build_system_fn, tiny_trace):
        system = build_system_fn(tiny_trace)
        reports = check_all(system)
        assert all(r.ok for r in reports.values())
        assert reports["reachability"].checked == 0


class TestReachability:
    def test_detects_copies_stranded_far_from_home(self, system):
        item_id, record = _first_record(system)
        network = system.network
        overlay = system.overlay
        home = overlay.live_home(record.item.publish_key)
        # Strand the item: strip every copy near the home, park one on
        # the live node farthest down the walk order.
        stranded = None
        for nid in reversed(list(overlay.walk_order(home, "both"))):
            if network.is_alive(nid) and not network.node(nid).has_item(item_id):
                stranded = nid
                break
        item = None
        for holder in list(record.holders):
            if network.node(holder).has_item(item_id):
                item = network.node(holder).evict(item_id)
        network.node(stranded).store(item)
        record.holders = {stranded}
        report = check_reachability(system)
        assert not report.ok
        assert any(str(item_id) in s for s in report.samples)

    def test_items_with_no_live_copy_are_lost_not_violations(self, system):
        item_id, record = _first_record(system)
        for holder in list(record.holders):
            if system.network.node(holder).has_item(item_id):
                system.network.node(holder).evict(item_id)
        report = check_reachability(system)
        assert report.ok
        assert report.info["lost"] == 1


class TestReplicaCounts:
    def test_detects_partial_loss(self, system):
        item_id, record = _first_record(system)
        survivors = sorted(
            h for h in record.holders
            if system.network.node(h).has_item(item_id)
        )
        for holder in survivors[1:]:  # leave exactly one live copy
            system.network.node(holder).evict(item_id)
        report = check_replica_counts(system)
        assert not report.ok
        assert report.violations == 1

    def test_total_loss_is_info(self, system):
        item_id, record = _first_record(system)
        for holder in list(record.holders):
            if system.network.node(holder).has_item(item_id):
                system.network.node(holder).evict(item_id)
        report = check_replica_counts(system)
        assert report.ok
        assert report.info["lost"] == 1


class TestAccounting:
    def test_no_plane_vacuously_ok(self):
        assert check_accounting(None).ok

    def test_detects_unclassified_charge(self):
        plane = LinkFaultPlane(seed=0)
        plane.charged += 1  # a message charged but never classified
        report = check_accounting(plane)
        assert not report.ok
        assert "charged 1" in report.samples[0]


class TestHolderIndex:
    def test_detects_dangling_live_credit(self, system):
        repair = RepairEngine(system).attach()
        item_id, record = _first_record(system)
        holder = next(
            h for h in record.holders
            if system.network.node(h).has_item(item_id)
        )
        system.network.node(holder).evict(item_id)  # index not told
        report = check_holder_index(system, repair)
        assert not report.ok

    def test_detects_index_transpose_skew(self, system):
        repair = RepairEngine(system).attach()
        item_id, record = _first_record(system)
        holder = next(iter(record.holders))
        repair._item_holders[item_id].discard(holder)  # noqa: SLF001
        report = check_holder_index(system, repair)
        assert not report.ok
