"""Liveness notification exactness under repeated / overlapping kills.

The repair engine's dirty set is driven purely by liveness listener
callbacks, so the contract pinned here is load-bearing: every listener
fires **once per actual transition** — never for an id that is already
dead, unknown, or repeated within a batch.  A double notification would
double-count repair work; a missed one would leak dead holders.
"""

from __future__ import annotations

import numpy as np

from repro.maint import make_scenario, run_scenarios
from repro.sim.network import Network
from repro.sim.node import PeerNode


def make_net(n: int = 10) -> Network:
    net = Network()
    for i in range(n):
        net.add_node(PeerNode(i))
    return net


class Recorder:
    def __init__(self, net: Network) -> None:
        self.events: list[tuple[int, str]] = []
        net.subscribe_liveness(lambda nid, change: self.events.append((nid, change)))

    def count(self, change: str) -> int:
        return sum(1 for _, c in self.events if c == change)


class TestFailNodesNotifications:
    def test_one_notification_per_transition(self):
        net = make_net()
        rec = Recorder(net)
        assert net.fail_nodes([1, 2, 3]) == 3
        assert rec.count("fail") == 3

    def test_repeated_ids_within_a_batch_notify_once(self):
        net = make_net()
        rec = Recorder(net)
        assert net.fail_nodes([4, 4, 4, 5]) == 2
        assert rec.events == [(4, "fail"), (5, "fail")]

    def test_overlapping_batches_skip_already_dead(self):
        net = make_net()
        rec = Recorder(net)
        assert net.fail_nodes([1, 2, 3]) == 3
        assert net.fail_nodes([2, 3, 4]) == 1  # only 4 transitions
        assert rec.count("fail") == 4
        assert net.fail_nodes([1, 2, 3, 4]) == 0
        assert rec.count("fail") == 4

    def test_unknown_ids_do_not_notify(self):
        net = make_net()
        rec = Recorder(net)
        assert net.fail_nodes([999, 1000]) == 0
        assert rec.events == []

    def test_return_value_always_matches_notification_count(self):
        net = make_net(20)
        rec = Recorder(net)
        rng = np.random.default_rng(7)
        total = 0
        for _ in range(6):
            batch = rng.integers(0, 25, size=8)  # overlaps + unknown ids
            total += net.fail_nodes(int(b) for b in batch)
        assert rec.count("fail") == total

    def test_recover_then_fail_notifies_again(self):
        net = make_net()
        rec = Recorder(net)
        net.fail_nodes([1])
        assert net.recover_node(1)
        assert net.fail_nodes([1, 1]) == 1
        assert rec.events == [(1, "fail"), (1, "recover"), (1, "fail")]


class TestSingleNodeIdempotency:
    """``fail_node``/``recover_node`` fire listeners once per actual
    transition — repeat calls are no-op ``False`` returns, not extra
    notifications (the repair engine's dirty-set exactness rests on
    this)."""

    def test_fail_node_twice_notifies_once(self):
        net = make_net()
        rec = Recorder(net)
        assert net.fail_node(3) is True
        assert net.fail_node(3) is False
        assert rec.events == [(3, "fail")]

    def test_recover_node_twice_notifies_once(self):
        net = make_net()
        rec = Recorder(net)
        net.fail_node(3)
        assert net.recover_node(3) is True
        assert net.recover_node(3) is False  # already alive
        assert rec.events == [(3, "fail"), (3, "recover")]

    def test_recover_of_never_failed_node_is_silent(self):
        net = make_net()
        rec = Recorder(net)
        assert net.recover_node(1) is False
        assert net.recover_node(999) is False  # unknown id
        assert rec.events == []

    def test_full_cycle_listener_count(self):
        net = make_net()
        rec = Recorder(net)
        for _ in range(3):
            net.fail_node(2)
            net.fail_node(2)
            net.recover_node(2)
            net.recover_node(2)
        assert rec.count("fail") == 3
        assert rec.count("recover") == 3


class TestPartitionHealNotifications:
    """``partition_nodes``/``heal_partition`` notify every member of the
    cut-off side with the ``partition``/``heal`` change kinds — the feed
    the anti-entropy engine subscribes to."""

    def _net_with_plane(self):
        from repro.sim.linkfaults import LinkFaultPlane

        net = make_net()
        net.attach_link_faults(LinkFaultPlane(seed=0))
        return net

    def test_partition_notifies_each_side_member(self):
        net = self._net_with_plane()
        rec = Recorder(net)
        assert net.partition_nodes({1, 2, 3}) == 3
        assert sorted(rec.events) == [(1, "partition"), (2, "partition"), (3, "partition")]

    def test_heal_notifies_the_same_side(self):
        net = self._net_with_plane()
        rec = Recorder(net)
        net.partition_nodes({4, 5})
        assert net.heal_partition() == 2
        assert rec.count("heal") == 2
        assert {nid for nid, c in rec.events if c == "heal"} == {4, 5}

    def test_heal_without_partition_is_silent(self):
        net = self._net_with_plane()
        rec = Recorder(net)
        assert net.heal_partition() == 0
        assert rec.events == []

    def test_unknown_ids_not_notified_on_partition(self):
        net = self._net_with_plane()
        rec = Recorder(net)
        assert net.partition_nodes({1, 999}) == 1
        assert rec.events == [(1, "partition")]


class TestScenarioLevelExactness:
    def test_overlapping_batch_kills_notify_once_per_death(
        self, small_trace, build_replicated
    ):
        system = build_replicated(small_trace, n_nodes=80)
        fails: list[int] = []
        system.network.subscribe_liveness(
            lambda nid, change: change == "fail" and fails.append(nid)
        )
        # Three staggered kill waves over the same shrinking population:
        # later waves can only kill survivors, so listener fail events
        # must equal stats.failed exactly — no double counting.
        scenarios = [
            make_scenario("batch-kill", fraction=0.3, at=1.0),
            make_scenario("batch-kill", fraction=0.3, at=2.0),
            make_scenario("batch-kill", fraction=0.3, at=3.0),
        ]
        stats = run_scenarios(
            system, scenarios, np.random.default_rng(23), horizon=5.0
        )
        assert stats.failed > 0
        assert len(fails) == stats.failed
        assert len(set(fails)) == len(fails)  # every death is a distinct node
