"""Incremental repair engine: placement equivalence with the full scan.

The load-bearing property is that on any run whose liveness transitions
all flow through the :class:`~repro.sim.network.Network`, a
:class:`~repro.maint.RepairEngine` tick places copies *identically* to
:meth:`~repro.core.replication.ReplicationManager.repair` — the engine
is a pure cost optimisation, never a behaviour change.  Verified here on
twin systems under batch kills, repeated waves, and a seeded flapping
scenario driven by the event engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maint import FlappingNodes, RepairEngine, install_scenarios
from repro.sim.failures import fail_fraction


def make_twins(build_replicated, trace):
    kwargs = dict(trace=trace, n_nodes=120, factor=3, seed=31)
    full = build_replicated(**kwargs)
    incr = build_replicated(**kwargs)
    engine = RepairEngine(incr).attach()
    return full, incr, engine


class TestEquivalence:
    def test_batch_kill_placements_identical(
        self, build_replicated, holders_snapshot, tiny_trace
    ):
        full, incr, engine = make_twins(build_replicated, tiny_trace)
        fail_fraction(full.network, 0.3, np.random.default_rng(7))
        fail_fraction(incr.network, 0.3, np.random.default_rng(7))
        placed_full = full.replication.repair()
        placed_incr = engine.tick()
        assert placed_incr == placed_full
        assert placed_incr > 0
        assert holders_snapshot(incr) == holders_snapshot(full)

    def test_repeated_waves_stay_identical(
        self, build_replicated, holders_snapshot, tiny_trace
    ):
        full, incr, engine = make_twins(build_replicated, tiny_trace)
        for wave in range(3):
            rng_seed = 100 + wave
            fail_fraction(full.network, 0.1, np.random.default_rng(rng_seed))
            fail_fraction(incr.network, 0.1, np.random.default_rng(rng_seed))
            assert engine.tick() == full.replication.repair()
            assert holders_snapshot(incr) == holders_snapshot(full)

    def test_flapping_scenario_placements_identical(
        self, build_replicated, holders_snapshot, tiny_trace
    ):
        """Seeded flapping driven by the simulator: periodic engine ticks
        on one twin, periodic full scans on the other, same horizon."""
        full, incr, engine = make_twins(build_replicated, tiny_trace)
        for system in (full, incr):
            install_scenarios(
                system,
                [FlappingNodes(count=6, period=10.0, stop=40.0)],
                np.random.default_rng(5),
            )
        full.replication.schedule(4.0)
        engine.schedule(4.0)
        full.network.simulator.run(until=60.0)
        incr.network.simulator.run(until=60.0)
        assert engine.ticks > 0
        assert holders_snapshot(incr) == holders_snapshot(full)


class TestDirtySet:
    @pytest.fixture()
    def engine_system(self, build_replicated, tiny_trace):
        system = build_replicated(trace=tiny_trace, seed=31)
        return system, RepairEngine(system).attach()

    def test_clean_tick_is_a_noop(self, engine_system):
        _, engine = engine_system
        assert engine.dirty_size == 0
        assert engine.tick() == 0

    def test_failure_dirties_only_held_items(self, engine_system):
        system, engine = engine_system
        victim = next(iter(engine.holder_index))
        held = set(engine.holder_index[victim])
        system.network.fail_node(victim)
        assert engine.dirty == held

    def test_recovery_redirties_held_items(self, engine_system):
        system, engine = engine_system
        victim = next(iter(engine.holder_index))
        held = set(engine.holder_index[victim])
        system.network.fail_node(victim)
        engine.tick()
        system.network.recover_node(victim)
        # The recovered node's items resurface for re-examination.
        assert engine.dirty >= held

    def test_attach_seeds_holder_index_from_records(self, engine_system):
        system, engine = engine_system
        for item_id, record in system.replication.records.items():
            assert engine.holders_of(item_id) == record.holders

    def test_double_attach_rejected(self, engine_system):
        _, engine = engine_system
        with pytest.raises(RuntimeError):
            engine.attach()

    def test_unreplicated_system_rejected(self, build_system_fn, tiny_trace):
        system = build_system_fn(tiny_trace)
        with pytest.raises(ValueError):
            RepairEngine(system)


class TestMetrics:
    def test_maint_counters_emitted_when_observable(
        self, build_replicated, tiny_trace
    ):
        system = build_replicated(trace=tiny_trace, seed=31, observability=True)
        engine = RepairEngine(system).attach()
        fail_fraction(system.network, 0.3, np.random.default_rng(9))
        placed = engine.tick()
        counters = system.obs.metrics.counters
        assert counters["maint.dirty_marked"] > 0
        assert counters["maint.replicas_placed"] == placed
        assert "maint.repair_tick" in system.obs.metrics.timers
