"""Retry policy: deterministic backoff and graceful degradation.

Two properties are pinned: (1) the jittered delay sequence is a pure
function of ``(seed, token, attempt)`` — identical across runs and
policy instances, different across seeds; (2) under stale routing
tables, delivery with retries strictly dominates plain routing, and two
identically seeded systems produce bit-identical outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maint import RetryPolicy
from repro.sim.failures import fail_fraction



class TestDelayDeterminism:
    def test_same_seed_same_sequence(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        for attempt in range(6):
            for token in (0, 17, 2**40 + 3):
                assert a.delay(attempt, token) == b.delay(attempt, token)

    def test_different_seed_different_sequence(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=2)
        assert [a.delay(i, 9) for i in range(4)] != [b.delay(i, 9) for i in range(4)]

    def test_different_token_different_jitter(self):
        p = RetryPolicy(seed=5)
        assert p.jitter_unit(0, 100) != p.jitter_unit(0, 101)

    def test_jitter_unit_in_unit_interval(self):
        p = RetryPolicy(seed=3)
        units = [p.jitter_unit(a, t) for a in range(8) for t in range(16)]
        assert all(0.0 <= u < 1.0 for u in units)
        # Crude uniformity sanity: the mean of 128 draws is near 0.5.
        assert 0.35 < sum(units) / len(units) < 0.65

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(base_delay=0.5, max_delay=4.0, jitter=0.0, seed=0)
        assert p.delay(0) == 0.5
        assert p.delay(1) == 1.0
        assert p.delay(2) == 2.0
        assert p.delay(3) == 4.0
        assert p.delay(10) == 4.0  # capped

    def test_jitter_bounds_delay(self):
        p = RetryPolicy(base_delay=1.0, max_delay=64.0, jitter=0.25, seed=7)
        for attempt in range(5):
            d = p.delay(attempt, token=3)
            base = min(64.0, 1.0 * 2**attempt)
            assert base <= d <= base * 1.25


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"jitter": 1.5},
            {"max_total_delay": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_unset_budget_is_allowed(self):
        assert RetryPolicy(max_total_delay=None).max_total_delay is None
        assert RetryPolicy(max_total_delay=0.0).max_total_delay == 0.0


def _degraded_system(build, tiny_trace, *, seed=47, retry=True, **extra):
    """A churned system with stale tables: 55% dead, no stabilize."""
    kwargs = dict(trace=tiny_trace, n_nodes=150, factor=3, seed=seed)
    if retry:
        kwargs["retry_policy"] = RetryPolicy(seed=seed)
    kwargs.update(extra)
    system = build(**kwargs)
    fail_fraction(system.network, 0.55, np.random.default_rng(seed + 2))
    return system


def _probe(system, *, n=80, seed=99):
    """Fraction of sampled items a remote origin can still retrieve."""
    rng = np.random.default_rng(seed)
    origins = list(system.network.alive_ids())
    item_ids = list(system.replication.records)
    hits = 0
    probes = []
    for _ in range(n):
        origin = origins[int(rng.integers(len(origins)))]
        item_id = item_ids[int(rng.integers(len(item_ids)))]
        result = system.find(origin, item_id)
        probes.append((item_id, bool(result.found)))
        hits += bool(result.found)
    return hits / n, probes


class TestRouteWithRetry:
    def test_retry_improves_delivery_under_stale_tables(
        self, build_replicated, tiny_trace
    ):
        """Plain routes stall at non-home terminals with stale tables;
        deliver_home recovers every key some live node can serve."""
        system = _degraded_system(build_replicated, tiny_trace, retry=True)
        rng = np.random.default_rng(5)
        origins = list(system.network.alive_ids())
        plain = retried = 0
        for _ in range(80):
            origin = origins[int(rng.integers(len(origins)))]
            key = system.space.random_key(rng)
            r0 = system.overlay.route(origin, key)
            plain += bool(r0.succeeded and system.network.is_alive(r0.home))
            r1 = system.deliver_home(origin, key)
            retried += bool(r1.succeeded and system.network.is_alive(r1.home))
        assert retried == 80  # a live node always exists for every key
        assert retried > plain

    def test_same_seed_identical_outcomes(self, build_replicated, tiny_trace):
        _, a = _probe(_degraded_system(build_replicated, tiny_trace, retry=True))
        _, b = _probe(_degraded_system(build_replicated, tiny_trace, retry=True))
        assert a == b

    def test_maint_counters_emitted(self, build_replicated, tiny_trace):
        system = _degraded_system(build_replicated, tiny_trace, retry=True, observability=True)
        _probe(system, n=60)
        counters = system.obs.metrics.counters
        assert counters.get("maint.retries", 0) > 0
        assert "maint.deliver" in system.obs.metrics.timers
        # Backoff delays were observed once per retry.
        dist = system.obs.metrics.distributions["maint.backoff_delay"]
        assert dist.count == counters["maint.retries"]

    def test_delivered_home_is_live(self, build_replicated, tiny_trace):
        system = _degraded_system(build_replicated, tiny_trace, retry=True)
        rng = np.random.default_rng(13)
        origins = list(system.network.alive_ids())
        for _ in range(40):
            origin = origins[int(rng.integers(len(origins)))]
            key = system.space.random_key(rng)
            route = system.deliver_home(origin, key)
            assert route.succeeded
            assert system.network.is_alive(route.home)
            # The accumulated path starts at the true origin.
            assert route.path[0] == origin
            assert route.path[-1] == route.home

    def test_without_policy_deliver_home_is_plain_route(self, build_replicated, tiny_trace):
        system = _degraded_system(build_replicated, tiny_trace, retry=False)
        rng = np.random.default_rng(13)
        key = system.space.random_key(rng)
        origin = next(iter(system.network.alive_ids()))
        assert (
            system.deliver_home(origin, key).path
            == system.overlay.route(origin, key).path
        )


class TestBackoffBudget:
    """``max_total_delay`` caps the accumulated backoff, not the outcome:
    an exhausted budget degrades straight to the live-neighbor fallback."""

    def test_zero_budget_skips_every_retry(self, build_replicated, tiny_trace):
        system = _degraded_system(
            build_replicated,
            tiny_trace,
            retry=False,
            retry_policy=RetryPolicy(seed=47, max_total_delay=0.0),
            observability=True,
        )
        _probe(system, n=40)
        counters = system.obs.metrics.counters
        assert counters.get("maint.retries", 0) == 0
        assert counters.get("maint.retry_gave_up", 0) > 0

    def test_budget_exhaustion_still_delivers_via_fallback(
        self, build_replicated, tiny_trace
    ):
        system = _degraded_system(
            build_replicated,
            tiny_trace,
            retry=False,
            retry_policy=RetryPolicy(seed=47, max_total_delay=0.0),
        )
        rng = np.random.default_rng(5)
        origins = list(system.network.alive_ids())
        for _ in range(40):
            origin = origins[int(rng.integers(len(origins)))]
            route = system.deliver_home(origin, system.space.random_key(rng))
            assert route.succeeded
            assert system.network.is_alive(route.home)

    def test_generous_budget_matches_unbounded_policy(
        self, build_replicated, tiny_trace
    ):
        # A budget wider than the whole exponential ladder changes nothing.
        _, capped = _probe(
            _degraded_system(
                build_replicated,
                tiny_trace,
                retry=False,
                retry_policy=RetryPolicy(seed=47, max_total_delay=1e9),
            )
        )
        _, unbounded = _probe(_degraded_system(build_replicated, tiny_trace, retry=True))
        assert capped == unbounded

    def test_tight_budget_spends_less_backoff(self, build_replicated, tiny_trace):
        def total_backoff(policy):
            system = _degraded_system(
                build_replicated,
                tiny_trace,
                retry=False,
                retry_policy=policy,
                observability=True,
            )
            _probe(system, n=40)
            dist = system.obs.metrics.distributions.get("maint.backoff_delay")
            return dist.count if dist is not None else 0

        tight = total_backoff(RetryPolicy(seed=47, max_total_delay=0.6))
        loose = total_backoff(RetryPolicy(seed=47))
        assert tight < loose
