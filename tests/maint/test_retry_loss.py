"""Retry delivery under probabilistic message loss.

Pins the loss ↔ retry contract: a route stalled by a dropped hop is
indistinguishable (to the sender) from one stalled by a dead peer, so
``route_with_retry`` resumes it from the stall point and, for any drop
probability < 1, home delivery eventually lands — the publish/retrieve
paths degrade instead of crashing.  Both the fault draws and the retry
backoff are seed-deterministic, so two identically-seeded runs are
byte-identical twins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maint import RetryPolicy
from repro.maint.retry import route_with_retry
from repro.sim.linkfaults import LinkFaultPlane


@pytest.fixture()
def lossy_system(build_replicated, tiny_trace):
    def build(*, drop=0.35, seed=13, **retry_kwargs):
        kwargs = dict(
            seed=7, max_attempts=8, base_delay=0.1, max_delay=1.0,
            max_total_delay=60.0,
        )
        kwargs.update(retry_kwargs)
        system = build_replicated(
            trace=tiny_trace,
            n_nodes=100,
            seed=21,
            observability=True,
            retry_policy=RetryPolicy(**kwargs),
        )
        system.network.attach_link_faults(LinkFaultPlane(seed=seed, drop_prob=drop))
        return system

    return build


class TestEventualDelivery:
    def test_every_route_lands_on_a_live_home(self, lossy_system):
        system = lossy_system(drop=0.35)
        network = system.network
        rng = np.random.default_rng(5)
        for _ in range(60):
            key = int(rng.integers(0, system.space.modulus))
            origin = system.random_origin(rng)
            route = route_with_retry(system, origin, key)
            assert route.home is not None
            assert network.is_alive(route.home)

    def test_loss_stalls_are_actually_retried(self, lossy_system):
        system = lossy_system(drop=0.5)
        rng = np.random.default_rng(6)
        for _ in range(40):
            key = int(rng.integers(0, system.space.modulus))
            route_with_retry(system, system.random_origin(rng), key)
        counters = system.obs.metrics.snapshot().get("counters", {})
        # At drop 0.5 over 40 multi-hop routes, stalls are a certainty;
        # the retry machinery must have re-entered the route kernel.
        assert counters.get("maint.retries", 0) > 0

    def test_certain_loss_degrades_without_crashing(self, lossy_system):
        system = lossy_system(drop=1.0, max_attempts=3, max_total_delay=5.0)
        rng = np.random.default_rng(7)
        key = int(rng.integers(0, system.space.modulus))
        # Every hop and even the fallback handoff is eaten by the plane:
        # the result degrades (possibly to the stalled origin) but the
        # call must not raise.
        route = route_with_retry(system, system.random_origin(rng), key)
        assert route is not None


class TestSeededTwins:
    def _run(self, lossy_system, plane_seed: int):
        system = lossy_system(drop=0.3, seed=plane_seed)
        rng = np.random.default_rng(11)
        homes = []
        for _ in range(50):
            key = int(rng.integers(0, system.space.modulus))
            route = route_with_retry(system, system.random_origin(rng), key)
            homes.append((key, route.home))
        plane = system.network.link_faults
        return homes, plane.snapshot(), system.network.sink.total

    def test_same_seed_identical_outcomes(self, lossy_system):
        assert self._run(lossy_system, 13) == self._run(lossy_system, 13)

    def test_different_plane_seed_diverges(self, lossy_system):
        a = self._run(lossy_system, 13)
        b = self._run(lossy_system, 14)
        assert a[1] != b[1]  # different fault schedule

    def test_backoff_jitter_identical_across_runs(self):
        # The policy's deterministic jitter, independent of any system.
        a = RetryPolicy(seed=42, jitter=0.5)
        b = RetryPolicy(seed=42, jitter=0.5)
        delays_a = [a.delay(i, token=99) for i in range(6)]
        delays_b = [b.delay(i, token=99) for i in range(6)]
        assert delays_a == delays_b
