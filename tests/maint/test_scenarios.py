"""Declarative churn scenarios: each shape does what it says on the tin."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maint import (
    BUILTIN_SCENARIOS,
    BatchKill,
    FlappingNodes,
    LossyLinks,
    Partition,
    PoissonChurn,
    RegionFailure,
    install_scenarios,
    make_scenario,
    run_scenarios,
)



@pytest.fixture()
def system(build_replicated, tiny_trace):
    return build_replicated(trace=tiny_trace, n_nodes=100, seed=21)


class TestBatchKill:
    def test_kills_requested_fraction_at_time(self, system):
        alive_before = system.network.alive_count()
        stats = run_scenarios(
            system,
            [BatchKill(fraction=0.4, at=5.0)],
            np.random.default_rng(1),
            horizon=10.0,
        )
        assert stats.failed == round(alive_before * 0.4)
        assert system.network.alive_count() == alive_before - stats.failed

    def test_nothing_happens_before_fire_time(self, system):
        alive_before = system.network.alive_count()
        install_scenarios(
            system, [BatchKill(fraction=0.4, at=5.0)], np.random.default_rng(1)
        )
        system.network.simulator.run(until=4.0)
        assert system.network.alive_count() == alive_before

    def test_spare_nodes_survive(self, system):
        spare = set(list(system.network.alive_ids())[:5])
        run_scenarios(
            system,
            [BatchKill(fraction=0.9)],
            np.random.default_rng(1),
            horizon=1.0,
            spare=spare,
        )
        assert all(system.network.is_alive(nid) for nid in spare)


class TestPoissonChurn:
    def test_departures_accumulate_over_horizon(self, system):
        stats = run_scenarios(
            system,
            [PoissonChurn(depart_rate=2.0)],
            np.random.default_rng(2),
            horizon=20.0,
        )
        assert stats.failed > 10

    def test_stop_bounds_the_process(self, system):
        stats = run_scenarios(
            system,
            [PoissonChurn(depart_rate=5.0, stop=2.0)],
            np.random.default_rng(2),
            horizon=50.0,
        )
        # ~10 expected by t=2; far fewer than the ~250 an unbounded
        # process would attempt over the full horizon.
        assert 0 < stats.failed < 40


class TestFlappingNodes:
    def test_flaps_fail_and_recover(self, system):
        stats = run_scenarios(
            system,
            [FlappingNodes(count=5, period=10.0)],
            np.random.default_rng(3),
            horizon=35.0,
        )
        assert stats.failed > 5  # each victim flapped more than once
        assert stats.recovered > 0
        assert stats.failed - stats.recovered <= 5  # at most all victims down

    def test_same_seed_same_victims(self, build_replicated, tiny_trace):
        outcomes = []
        for _ in range(2):
            sys_ = build_replicated(trace=tiny_trace, n_nodes=100, seed=21)
            run_scenarios(
                sys_,
                [FlappingNodes(count=4, period=8.0, stop=20.0)],
                np.random.default_rng(77),
                horizon=30.0,
            )
            dead = set(sys_.network.node_ids()) - set(sys_.network.alive_ids())
            outcomes.append(sorted(dead))
        assert outcomes[0] == outcomes[1]

    def test_bad_down_for_rejected(self, system):
        with pytest.raises(ValueError):
            run_scenarios(
                system,
                [FlappingNodes(period=10.0, down_for=10.0)],
                np.random.default_rng(3),
                horizon=1.0,
            )


class TestRegionFailure:
    def test_kills_exactly_the_interval(self, system):
        m = system.space.modulus
        center = m // 2
        stats = run_scenarios(
            system,
            [RegionFailure(span=0.2, center=center)],
            np.random.default_rng(4),
            horizon=1.0,
        )
        half = 0.2 * m / 2.0
        for nid in system.network.node_ids():
            d = abs(nid - center) % m
            in_region = min(d, m - d) <= half
            assert system.network.is_alive(nid) == (not in_region)
        assert stats.failed > 0

    def test_bad_span_rejected(self, system):
        with pytest.raises(ValueError):
            run_scenarios(
                system, [RegionFailure(span=0.0)], np.random.default_rng(4), horizon=1.0
            )


class TestPartitionScenario:
    def test_split_and_heal_fire_on_schedule(self, system):
        stats = run_scenarios(
            system,
            [Partition(fraction=0.4, at=2.0, heal_at=8.0)],
            np.random.default_rng(9),
            horizon=10.0,
        )
        plane = system.network.link_faults
        assert plane is not None  # auto-attached
        assert stats.splits == 1 and stats.heals == 1
        assert not plane.partitioned  # healed by horizon
        assert stats.failed == 0  # message-plane fault: nobody died

    def test_cut_holds_between_split_and_heal(self, system):
        install_scenarios(
            system,
            [Partition(fraction=0.4, at=2.0, heal_at=8.0)],
            np.random.default_rng(9),
        )
        system.network.simulator.run(until=5.0)
        assert system.network.link_faults.partitioned

    def test_bad_parameters_rejected(self, system):
        for bad in (
            Partition(fraction=0.0),
            Partition(fraction=1.0),
            Partition(at=5.0, heal_at=5.0),
        ):
            with pytest.raises(ValueError):
                run_scenarios(
                    system, [bad], np.random.default_rng(0), horizon=1.0
                )


class TestLossyLinksScenario:
    def test_window_turns_loss_on_then_off(self, system):
        install_scenarios(
            system,
            [LossyLinks(drop=0.2, dup=0.1, jitter=1.5, start=1.0, stop=6.0)],
            np.random.default_rng(10),
        )
        sim = system.network.simulator
        plane = system.network.link_faults
        assert plane.drop_prob == 0.0  # not started yet
        sim.run(until=3.0)
        assert (plane.drop_prob, plane.dup_prob, plane.delay_jitter) == (0.2, 0.1, 1.5)
        sim.run(until=7.0)
        assert (plane.drop_prob, plane.dup_prob, plane.delay_jitter) == (0.0, 0.0, 0.0)

    def test_bad_parameters_rejected_eagerly(self, system):
        for bad in (
            LossyLinks(drop=1.5),
            LossyLinks(stop=1.0, start=2.0),
        ):
            with pytest.raises(ValueError):
                run_scenarios(
                    system, [bad], np.random.default_rng(0), horizon=1.0
                )


class TestDeterministicSchedules:
    """Satellite of the chaos harness: identically-seeded installs must
    produce identical event schedules — same victims, same cut, same
    fault draws — or seeded chaos runs would not be replayable."""

    MIX = [
        LossyLinks(drop=0.1, dup=0.05, jitter=1.0, stop=15.0),
        Partition(fraction=0.4, at=5.0, heal_at=12.0),
        BatchKill(fraction=0.2, at=8.0),
    ]

    def _run_once(self, build_replicated, tiny_trace):
        sys_ = build_replicated(trace=tiny_trace, n_nodes=100, seed=21)
        stats = run_scenarios(
            sys_, list(self.MIX), np.random.default_rng(99), horizon=20.0
        )
        dead = sorted(set(sys_.network.node_ids()) - set(sys_.network.alive_ids()))
        return (
            stats.as_dict(),
            sys_.network.link_faults.snapshot(),
            dead,
            sys_.network.sink.total,
        )

    def test_identical_seeds_identical_schedules(self, build_replicated, tiny_trace):
        assert self._run_once(build_replicated, tiny_trace) == self._run_once(
            build_replicated, tiny_trace
        )

    def test_different_install_seed_diverges(self, build_replicated, tiny_trace):
        sys_a = build_replicated(trace=tiny_trace, n_nodes=100, seed=21)
        sys_b = build_replicated(trace=tiny_trace, n_nodes=100, seed=21)
        run_scenarios(sys_a, list(self.MIX), np.random.default_rng(99), horizon=20.0)
        run_scenarios(sys_b, list(self.MIX), np.random.default_rng(100), horizon=20.0)
        dead_a = sorted(set(sys_a.network.node_ids()) - set(sys_a.network.alive_ids()))
        dead_b = sorted(set(sys_b.network.node_ids()) - set(sys_b.network.alive_ids()))
        assert dead_a != dead_b


class TestDriving:
    def test_simulator_required(self, build_system_fn, tiny_trace):
        system = build_system_fn(tiny_trace)  # no simulator attached
        with pytest.raises(RuntimeError):
            install_scenarios(system, [BatchKill()], np.random.default_rng(0))

    def test_stats_shared_across_scenarios(self, system):
        stats = run_scenarios(
            system,
            [BatchKill(fraction=0.1, at=0.0), BatchKill(fraction=0.1, at=5.0)],
            np.random.default_rng(6),
            horizon=10.0,
        )
        assert stats.failed > 0
        assert stats.as_dict()["failed"] == stats.failed

    def test_make_scenario_builds_builtins(self):
        s = make_scenario("batch-kill", fraction=0.25)
        assert isinstance(s, BatchKill)
        assert s.fraction == 0.25
        assert set(BUILTIN_SCENARIOS) == {
            "batch-kill", "poisson", "flapping", "region", "partition", "lossy",
        }

    def test_make_scenario_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("meteor-strike")
