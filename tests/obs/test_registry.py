"""Unit tests for the metrics registry, distributions, and profiler."""

import csv
import json

import pytest

from repro.obs import NULL_OBS, Observability, SimProfiler
from repro.obs.registry import (
    NULL_METRICS,
    Distribution,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.registry import _RESERVOIR_CAP
from repro.sim.engine import Simulator


class TestDistribution:
    def test_streaming_moments(self):
        d = Distribution()
        for v in (1.0, 2.0, 3.0, 4.0):
            d.record(v)
        assert d.count == 4
        assert d.mean == pytest.approx(2.5)
        assert d.min == 1.0
        assert d.max == 4.0

    def test_quantiles_exact_before_thinning(self):
        d = Distribution()
        for v in range(101):
            d.record(float(v))
        assert d.quantile(0.0) == 0.0
        assert d.quantile(0.5) == 50.0
        assert d.quantile(1.0) == 100.0

    def test_quantile_range_validation(self):
        d = Distribution()
        d.record(1.0)
        with pytest.raises(ValueError):
            d.quantile(1.5)
        with pytest.raises(ValueError):
            Distribution().quantile(0.5)  # empty

    def test_reservoir_thins_deterministically(self):
        d = Distribution()
        n = _RESERVOIR_CAP * 3
        for v in range(n):
            d.record(float(v))
        # Exact stats survive thinning…
        assert d.count == n
        assert d.max == float(n - 1)
        # …and the reservoir stays bounded with a sane median.
        assert len(d._samples) < _RESERVOIR_CAP
        assert d.quantile(0.5) == pytest.approx(n / 2, rel=0.05)

    def test_merge(self):
        a, b = Distribution(), Distribution()
        for v in (1.0, 2.0):
            a.record(v)
        for v in (10.0, 20.0):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.min == 1.0
        assert a.max == 20.0
        assert a.mean == pytest.approx(8.25)

    def test_merge_unequal_strides_stays_bounded(self):
        # One thinned reservoir (stride > 1), one dense: merge must
        # equalize strides before concatenating, keep the result under
        # the cap, and preserve the exact count/min/max stats.
        a, b = Distribution(), Distribution()
        n = _RESERVOIR_CAP * 2
        for v in range(n):
            a.record(float(v))
        for v in range(100):
            b.record(float(v))
        assert a._stride > b._stride
        a.merge(b)
        assert a.count == n + 100
        assert a.min == 0.0 and a.max == float(n - 1)
        assert len(a._samples) < _RESERVOIR_CAP
        assert a.quantile(0.5) < n / 2  # the dense samples pull left

    def test_merge_repeated_respects_cap(self):
        acc = Distribution()
        for round_ in range(6):
            other = Distribution()
            for v in range(_RESERVOIR_CAP):
                other.record(float(v + round_))
            acc.merge(other)
        assert acc.count == 6 * _RESERVOIR_CAP
        assert len(acc._samples) < _RESERVOIR_CAP

    def test_as_dict_empty(self):
        assert Distribution().as_dict() == {"count": 0}


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.counter("a")
        m.counter("a", 4)
        assert m.counters["a"] == 5

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("n", 10)
        m.gauge("n", 20)
        assert m.gauges["n"] == 20.0

    def test_observe_and_bucket(self):
        m = MetricsRegistry()
        m.observe("depth", 3)
        m.observe("depth", 5)
        m.bucket("inbox", 42)
        m.bucket("inbox", 42)
        m.bucket("inbox", 7)
        assert m.distributions["depth"].count == 2
        assert m.buckets["inbox"][42] == 2

    def test_timer_records_wall_and_cpu(self):
        m = MetricsRegistry()
        with m.timer("k"):
            sum(range(1000))
        stat = m.timers["k"]
        assert stat.wall.count == 1
        assert stat.cpu.count == 1
        assert stat.wall.min >= 0.0

    def test_record_timing_direct(self):
        m = MetricsRegistry()
        m.record_timing("k", 0.5, 0.25)
        assert m.timers["k"].wall.mean == pytest.approx(0.5)
        assert m.timers["k"].cpu.mean == pytest.approx(0.25)

    def test_merge_folds_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", 1)
        b.counter("c", 2)
        b.gauge("g", 9)
        b.observe("d", 1.0)
        b.record_timing("t", 0.1)
        b.bucket("bk", "x")
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.gauges["g"] == 9.0
        assert a.distributions["d"].count == 1
        assert a.timers["t"].wall.count == 1
        assert a.buckets["bk"]["x"] == 1

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("c")
        m.gauge("g", 1)
        m.observe("d", 2.0)
        with m.timer("t"):
            pass
        m.bucket("bk", 5)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["distributions"]["d"]["count"] == 1
        assert snap["timers"]["t"]["wall_s"]["count"] == 1
        assert snap["buckets"]["bk"] == {"5": 1}

    def test_json_and_csv_export(self, tmp_path):
        m = MetricsRegistry()
        m.counter("c", 2)
        with m.timer("t"):
            pass
        jp = m.to_json(tmp_path / "m.json")
        assert json.loads(jp.read_text())["counters"]["c"] == 2
        cp = m.to_csv(tmp_path / "m.csv")
        rows = list(csv.reader(cp.open()))
        assert rows[0] == ["instrument", "name", "field", "value"]
        assert ["counter", "c", "count", "2"] in rows
        assert any(r[0] == "timer" and r[2] == "wall_s.count" for r in rows)

    def test_render_tables(self):
        m = MetricsRegistry()
        m.counter("net.sent.publish", 7)
        m.gauge("build.nodes", 80)
        m.observe("sim.queue_depth", 1.0)
        with m.timer("kernel.angles"):
            pass
        m.bucket("net.node_inbox", 123, 4)
        text = m.render_tables()
        assert "== counters ==" in text
        assert "net.sent.publish" in text
        assert "== timers (wall / cpu, ms) ==" in text
        assert "bucket: net.node_inbox" in text

    def test_render_tables_empty(self):
        assert MetricsRegistry().render_tables() == "(no metrics recorded)"


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_operations_are_noops(self):
        m = NullMetricsRegistry()
        m.counter("c")
        m.gauge("g", 1)
        m.observe("d", 1.0)
        m.bucket("b", 1)
        with m.timer("t"):
            pass
        m.record_timing("t", 1.0)
        m.merge(MetricsRegistry())
        assert m.counters == {}
        assert m.snapshot() == {}
        assert m.render_tables() == "(observability disabled)"


class TestObservabilityBundle:
    def test_default_bundle_enabled(self):
        obs = Observability()
        assert obs.enabled
        assert obs.tracer.enabled
        assert obs.metrics.enabled

    def test_null_bundle_disabled(self):
        assert NULL_OBS.enabled is False

    def test_disabled_constructor(self):
        assert Observability.disabled().enabled is False


class TestSimProfiler:
    def test_attach_and_step_timing(self):
        obs = Observability()
        sim = Simulator()
        SimProfiler(obs.metrics).attach(sim)
        assert sim.profiler is not None
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        snap = obs.metrics.snapshot()
        assert snap["timers"]["sim.step"]["wall_s"]["count"] == 3
        assert snap["distributions"]["sim.queue_depth"]["count"] == 3
        # Queue depth is sampled *before* the callback pops run: the
        # first step sees 2 remaining events, the last sees 0.
        assert snap["distributions"]["sim.queue_depth"]["max"] == 2.0
        assert sim.profiler.events_profiled == 3

    def test_exception_still_recorded(self):
        obs = Observability()
        sim = Simulator()
        SimProfiler(obs.metrics).attach(sim)
        sim.schedule(1.0, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            sim.run()
        assert obs.metrics.timers["sim.step"].wall.count == 1

    def test_unprofiled_simulator_unchanged(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 1
