"""Unit tests for the structured trace bus."""

import pytest

from repro.obs.trace import NULL_TRACER, NullTraceBus, TraceBus, render_trace_tree


class FakeClock:
    """Deterministic, manually advanced clock for the bus."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def bus(clock):
    return TraceBus(clock=clock)


class TestSpanLifecycle:
    def test_span_context_manager_finishes(self, bus, clock):
        with bus.span("route", origin=1) as sp:
            clock.advance(0.5)
        assert sp.finished
        assert sp.duration_s == pytest.approx(0.5)

    def test_root_recorded(self, bus):
        with bus.span("publish"):
            pass
        assert [r.kind for r in bus.roots] == ["publish"]

    def test_nesting_parents_children(self, bus):
        with bus.span("publish") as outer:
            with bus.span("route") as inner:
                pass
        assert outer.children == [inner]
        assert bus.roots == [outer]

    def test_set_attrs_chainable(self, bus):
        with bus.span("route") as sp:
            sp.set(hops=3).set(ok=True)
        assert sp.attrs == {"hops": 3, "ok": True}

    def test_unfinished_span_duration_zero(self, bus, clock):
        sp = bus.span("route")
        clock.advance(1.0)
        assert not sp.finished
        assert sp.duration_s == 0.0

    def test_finish_is_idempotent(self, bus, clock):
        sp = bus.span("route")
        bus.finish(sp)
        end = sp.t_end
        clock.advance(1.0)
        bus.finish(sp)
        assert sp.t_end == end

    def test_finishing_parent_closes_open_children(self, bus):
        outer = bus.span("publish")
        inner = bus.span("route")
        bus.finish(outer)
        assert inner.finished
        assert bus.depth == 0

    def test_finish_out_of_stack_only_stamps(self, bus):
        # A span popped by its ancestor's finish can still be finished
        # later without disturbing unrelated open spans.
        outer = bus.span("publish")
        inner = bus.span("route")
        bus.finish(outer)
        other = bus.span("retrieve")
        bus.finish(inner)  # already closed and off the stack
        assert bus.depth == 1  # `other` must survive
        bus.finish(other)


class TestEvents:
    def test_event_is_zero_duration_child(self, bus, clock):
        with bus.span("route") as sp:
            clock.advance(0.1)
            ev = bus.event("hop", src=1, dst=2)
        assert ev in sp.children
        assert ev.is_event
        assert ev.duration_s == 0.0
        assert ev.attrs == {"src": 1, "dst": 2}

    def test_event_without_open_span_is_root(self, bus):
        ev = bus.event("fail", count=3)
        assert bus.roots == [ev]

    def test_span_is_not_event_even_when_instant(self, bus):
        # A span that happens to take zero clock time is still a span.
        with bus.span("route") as sp:
            pass
        assert sp.is_event  # t_end == t_start under the frozen clock
        ev = bus.event("hop")
        assert ev.is_event


class TestConsumption:
    def test_find_by_kind_in_order(self, bus):
        with bus.span("publish"):
            bus.event("displace", item=1)
            bus.event("displace", item=2)
        assert [e.attrs["item"] for e in bus.find("displace")] == [1, 2]

    def test_walk_depth_first(self, bus):
        with bus.span("retrieve"):
            with bus.span("route"):
                bus.event("hop")
            bus.event("walk")
        kinds = [s.kind for s in bus.roots[0].walk()]
        assert kinds == ["retrieve", "route", "hop", "walk"]

    def test_clear(self, bus):
        bus.span("route")
        bus.clear()
        assert bus.roots == []
        assert bus.depth == 0

    def test_max_roots_drops_oldest(self, clock):
        capped = TraceBus(clock=clock, max_roots=2)
        for i in range(4):
            with capped.span("route", n=i):
                pass
        assert [r.attrs["n"] for r in capped.roots] == [2, 3]

    def test_to_dict_roundtrips_shape(self, bus, clock):
        with bus.span("publish", item=7) as sp:
            clock.advance(0.25)
            bus.event("displace", src=1, dst=2)
        d = sp.to_dict()
        assert d["kind"] == "publish"
        assert d["attrs"] == {"item": 7}
        assert d["duration_s"] == pytest.approx(0.25)
        assert d["children"][0]["kind"] == "displace"


class TestRender:
    def test_tree_drawing(self, bus, clock):
        with bus.span("publish", item=5):
            with bus.span("route"):
                bus.event("hop", src=1, dst=2)
                bus.event("hop", src=2, dst=3)
            bus.event("displace", src=3, dst=4)
        text = render_trace_tree(bus.roots[0])
        lines = text.splitlines()
        assert lines[0].startswith("publish item=5")
        assert "├─ route" in lines[1]
        assert "│  ├─ hop src=1 dst=2" in text
        assert "│  └─ hop src=2 dst=3" in text
        assert "└─ displace src=3 dst=4" in text

    def test_duration_printed_above_threshold_only(self, bus, clock):
        with bus.span("slow") as sp:
            clock.advance(0.001)
        with bus.span("fast"):
            clock.advance(0.000001)
        assert "[1.00 ms]" in render_trace_tree(sp)
        assert "ms]" not in render_trace_tree(bus.roots[1])


class TestNullTraceBus:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert TraceBus().enabled is True

    def test_all_operations_are_noops(self):
        bus = NullTraceBus()
        with bus.span("route", origin=1) as sp:
            sp.set(hops=2)
            bus.event("hop", src=1, dst=2)
        assert bus.roots == []
        assert bus.find("hop") == []
        assert list(bus.iter_spans()) == []
        assert bus.to_dicts() == []
        bus.clear()  # must not raise

    def test_shared_null_span(self):
        a = NULL_TRACER.span("route")
        b = NULL_TRACER.event("hop")
        assert a is b


class TestSampling:
    def test_default_records_everything(self, bus):
        for i in range(5):
            with bus.span("publish", n=i):
                pass
        assert len(bus.roots) == 5

    def test_every_kth_root_kept(self, clock):
        bus = TraceBus(clock=clock, sample_every=3)
        for i in range(9):
            with bus.span("publish", n=i):
                bus.event("hop", step=i)
        assert [r.attrs["n"] for r in bus.roots] == [0, 3, 6]
        # Kept roots carry their full subtree.
        assert all(len(r.children) == 1 for r in bus.roots)

    def test_unsampled_kinds_unaffected(self, clock):
        bus = TraceBus(clock=clock, sample_every=4)
        for i in range(6):
            with bus.span("retrieve", n=i):
                pass
        assert len(bus.roots) == 6

    def test_sampling_is_per_kind(self, clock):
        bus = TraceBus(
            clock=clock,
            sample_every=2,
            sample_kinds=frozenset({"publish", "publish_batch"}),
        )
        for i in range(4):
            with bus.span("publish", n=i):
                pass
            with bus.span("publish_batch", n=i):
                pass
        kept = [(r.kind, r.attrs["n"]) for r in bus.roots]
        assert kept == [
            ("publish", 0),
            ("publish_batch", 0),
            ("publish", 2),
            ("publish_batch", 2),
        ]

    def test_muted_subtree_drops_children_and_events(self, clock):
        bus = TraceBus(clock=clock, sample_every=2)
        with bus.span("publish", n=0):
            pass
        with bus.span("publish", n=1):  # sampled out
            with bus.span("route"):
                bus.event("hop")
        with bus.span("publish", n=2):
            bus.event("displace")
        assert [r.attrs["n"] for r in bus.roots] == [0, 2]
        # Nothing leaked from the dropped tree; the kept one is intact.
        assert bus.find("hop") == []
        assert len(bus.find("displace")) == 1
        assert bus.depth == 0

    def test_nested_spans_of_sampled_kind_not_thinned(self, clock):
        """Sampling applies at the root only: a publish nested under a
        kept root records normally."""
        bus = TraceBus(clock=clock, sample_every=2)
        with bus.span("retrieve"):
            for i in range(3):
                with bus.span("publish", n=i):
                    pass
        assert len(bus.roots[0].children) == 3

    def test_muted_span_set_is_chainable_noop(self, clock):
        bus = TraceBus(clock=clock, sample_every=2)
        with bus.span("publish"):
            pass
        with bus.span("publish") as muted:
            assert muted.set(x=1) is muted
        assert bus.depth == 0

    def test_clear_resets_sampling_state(self, clock):
        bus = TraceBus(clock=clock, sample_every=2)
        with bus.span("publish", n=0):
            pass
        bus.clear()
        with bus.span("publish", n=1):
            pass
        # Post-clear the round-robin restarts: the first root is kept.
        assert [r.attrs["n"] for r in bus.roots] == [1]

    def test_bad_sample_every_rejected(self):
        with pytest.raises(ValueError):
            TraceBus(sample_every=0)
