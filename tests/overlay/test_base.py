"""Direct tests for the abstract overlay layer (RouteResult, shared helpers)."""

import pytest

from repro.overlay.base import RouteResult
from repro.overlay.idspace import KeySpace
from repro.overlay.tornado import TornadoOverlay
from repro.sim.network import Network

SPACE = KeySpace(1000)


def make_overlay(ids=(100, 300, 500, 700, 900)):
    overlay = TornadoOverlay(SPACE, Network())
    for nid in ids:
        overlay.add_node(nid)
    return overlay


class TestRouteResult:
    def test_hops_and_messages(self):
        r = RouteResult(origin=1, key=5, home=3, path=[1, 2, 3])
        assert r.hops == 2
        assert r.messages == 2

    def test_empty_path(self):
        r = RouteResult(origin=1, key=5, home=None, path=[])
        assert r.hops == 0


class TestMembershipHelpers:
    def test_size_and_alive_size(self):
        ov = make_overlay()
        assert ov.size == 5
        ov.node(100).fail()
        assert ov.size == 5  # registration unchanged
        assert ov.alive_size() == 4

    def test_nodes_in_key_order(self):
        ov = make_overlay((500, 100, 900))
        assert [n.node_id for n in ov.nodes()] == [100, 500, 900]

    def test_add_node_rollback_on_network_conflict(self):
        ov = make_overlay((100,))
        # Register a node directly on the network to force the conflict.
        from repro.sim.node import PeerNode

        ov.network.add_node(PeerNode(555))
        with pytest.raises(ValueError):
            ov.add_node(555)
        assert 555 not in ov.ring  # ring stayed consistent


class TestLiveHome:
    def test_prefers_true_home(self):
        ov = make_overlay()
        assert ov.live_home(310) == 300

    def test_falls_to_nearest_live(self):
        ov = make_overlay()
        ov.node(300).fail()
        assert ov.live_home(310) in (100, 500)
        ov.node(500).fail()
        assert ov.live_home(310) == 100

    def test_none_when_all_dead(self):
        ov = make_overlay()
        for nid in list(ov.ring):
            ov.node(nid).fail()
        assert ov.live_home(310) is None


class TestNeighborHelpers:
    def test_closest_neighbor_skips_dead(self):
        ov = make_overlay()
        ov.node(300).fail()
        assert ov.closest_neighbor(100) == 500 or ov.closest_neighbor(100) == 300
        # 300 is dead → next nearest live is 500 (or wrap candidates).
        assert ov.closest_neighbor(100) != 300

    def test_closest_neighbor_none_when_alone(self):
        ov = make_overlay((100,))
        assert ov.closest_neighbor(100) is None

    def test_replica_homes_count_and_exclusion(self):
        ov = make_overlay()
        homes = ov.replica_homes(500, 3)
        assert len(homes) == 3
        assert 500 not in homes

    def test_replica_homes_exhausts_small_ring(self):
        ov = make_overlay((100, 300))
        assert ov.replica_homes(100, 5) == [300]

    def test_closest_neighbors_wrap_mode(self):
        ov = make_overlay()
        out = list(ov.closest_neighbors(900, wrap=True))
        assert set(out) == {100, 300, 500, 700}
        # 100 is nearest under wrap (distance 200 == 700's; tie upward).
        assert out[0] in (100, 700)


class TestWalkOrderMemo:
    """The memoised walk_order must match the lazy generators it replaced
    and invalidate on every ring-membership change (fail() is NOT a
    membership change — callers filter liveness themselves)."""

    def test_both_matches_closest_neighbors(self):
        ov = make_overlay()
        for nid in (100, 500, 900):
            assert ov.walk_order(nid) == list(
                ov.closest_neighbors(nid, alive_only=False)
            )

    def test_directional_orders(self):
        ov = make_overlay()
        assert ov.walk_order(500, "up") == [700, 900]    # stops at space end
        assert ov.walk_order(500, "down") == [300, 100]  # no wrap-around
        assert ov.walk_order(900, "up") == []
        assert ov.walk_order(100, "down") == []

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            make_overlay().walk_order(100, "sideways")

    def test_cached_instance_returned(self):
        ov = make_overlay()
        assert ov.walk_order(300) is ov.walk_order(300)

    def test_membership_change_invalidates(self):
        ov = make_overlay()
        before = ov.walk_order(100)
        ov.add_node(200)
        after = ov.walk_order(100)
        assert after is not before
        assert 200 in after
        ov.remove_node(200)
        assert 200 not in ov.walk_order(100)

    def test_fail_does_not_invalidate(self):
        ov = make_overlay()
        order = ov.walk_order(100)
        ov.node(300).fail()
        assert ov.walk_order(100) is order  # dead node still listed
        assert 300 in order

    def test_cap_flush_bounds_memory(self):
        ov = make_overlay()
        ov._WALK_ORDER_CAP = 4
        for nid in (100, 300, 500, 700, 900):
            ov.walk_order(nid)
        assert len(ov._walk_orders) <= 4 + 1
        assert ov.walk_order(100) == list(
            ov.closest_neighbors(100, alive_only=False)
        )
