"""Unit tests for the Chord overlay."""

import numpy as np
import pytest

from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import KeySpace
from repro.sim.network import Network


def make_overlay(node_ids, modulus=1 << 16, **kwargs) -> ChordOverlay:
    overlay = ChordOverlay(KeySpace(modulus), Network(), **kwargs)
    for nid in node_ids:
        overlay.add_node(nid)
    return overlay


def random_overlay(n, seed=0, modulus=1 << 16, **kwargs):
    rng = np.random.default_rng(seed)
    ids = set()
    while len(ids) < n:
        ids.add(int(rng.integers(0, modulus)))
    return make_overlay(sorted(ids), modulus=modulus, **kwargs), rng


class TestHome:
    def test_home_is_successor(self):
        ov = make_overlay([100, 200, 60000])
        assert ov.home(150) == 200
        assert ov.home(100) == 100
        assert ov.home(60001) == 100  # wraps
        assert ov.home(50) == 100

    def test_preference_order_is_successor_chain(self):
        ov = make_overlay([100, 200, 300])
        prefs = list(ov._homes_by_preference(150))
        assert prefs == [200, 300, 100]


class TestFingers:
    def test_finger_targets(self):
        ov = make_overlay([0, 1 << 8, 1 << 12, 1 << 15])
        fingers = ov.fingers(0)
        assert fingers[8] == 1 << 8  # successor(0 + 256)
        assert fingers[0] == 1 << 8  # successor(1)
        assert fingers[15] == 1 << 15

    def test_successor_list_distinct_clockwise(self):
        ov = make_overlay([10, 20, 30, 40], successor_list_size=3)
        assert ov.successor_list(10) == [20, 30, 40]
        assert ov.successor_list(40) == [10, 20, 30]

    def test_successor_list_small_ring(self):
        ov = make_overlay([10, 20], successor_list_size=8)
        assert ov.successor_list(10) == [20]


class TestRouting:
    def test_route_reaches_home(self):
        ov, rng = random_overlay(150, seed=1)
        for _ in range(80):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(int(rng.integers(0, ov.size)))
            res = ov.route(origin, key)
            assert res.home == ov.home(key), (key, res.home, ov.home(key))
            assert res.succeeded

    def test_route_is_logarithmic(self):
        ov, rng = random_overlay(256, seed=2)
        hops = []
        for _ in range(100):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(int(rng.integers(0, ov.size)))
            hops.append(ov.route(origin, key).hops)
        assert np.mean(hops) < 2 * np.log2(256)

    def test_route_with_failures_after_stabilize(self):
        ov, rng = random_overlay(100, seed=3)
        dead = [ov.ring.at(i) for i in range(0, 100, 3)]
        ov.network.fail_nodes(dead)
        ov.stabilize()
        for _ in range(30):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(1)
            if not ov.network.is_alive(origin):
                continue
            res = ov.route(origin, key)
            assert res.home == ov.live_home(key)

    def test_route_detours_with_stale_tables(self):
        ov, rng = random_overlay(80, seed=4)
        key = int(rng.integers(0, ov.space.modulus))
        home = ov.home(key)
        ov.node(home).fail()
        origin = next(nid for nid in ov.ring if nid != home and ov.network.is_alive(nid))
        res = ov.route(origin, key)
        assert res.home != home

    def test_dead_origin_rejected(self):
        from repro.overlay.base import RoutingError

        ov = make_overlay([10, 20])
        ov.node(10).fail()
        with pytest.raises(RoutingError):
            ov.route(10, 15)

    def test_single_node_owns_everything(self):
        ov = make_overlay([42])
        res = ov.route(42, 7)
        assert res.home == 42
        assert res.hops == 0

    def test_invalid_successor_list_size(self):
        with pytest.raises(ValueError):
            ChordOverlay(KeySpace(16), Network(), successor_list_size=0)
