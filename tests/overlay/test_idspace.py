"""Unit + property tests for key space arithmetic and the sorted ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.idspace import KeySpace, SortedKeyRing

SPACE = KeySpace(1000)
keys_st = st.integers(min_value=0, max_value=999)


class TestKeySpace:
    def test_validation(self):
        with pytest.raises(ValueError):
            KeySpace(1)
        with pytest.raises(ValueError):
            SPACE.validate(1000)
        with pytest.raises(ValueError):
            SPACE.validate(-1)
        assert SPACE.validate(0) == 0

    def test_wrap(self):
        assert SPACE.wrap(1005) == 5
        assert SPACE.wrap(-1) == 999

    def test_linear_distance(self):
        assert SPACE.linear_distance(10, 990) == 980

    def test_ring_distance_wraps(self):
        assert SPACE.ring_distance(10, 990) == 20
        assert SPACE.ring_distance(0, 500) == 500
        assert SPACE.ring_distance(5, 5) == 0

    def test_clockwise_distance(self):
        assert SPACE.clockwise_distance(990, 10) == 20
        assert SPACE.clockwise_distance(10, 990) == 980

    def test_in_half_open(self):
        assert SPACE.in_half_open(5, 0, 10)
        assert SPACE.in_half_open(10, 0, 10)
        assert not SPACE.in_half_open(0, 0, 10)
        # wrapping interval (990, 10]
        assert SPACE.in_half_open(5, 990, 10)
        assert SPACE.in_half_open(995, 990, 10)
        assert not SPACE.in_half_open(500, 990, 10)
        # degenerate = full circle
        assert SPACE.in_half_open(123, 7, 7)

    def test_midpoint(self):
        assert SPACE.midpoint(0, 10) == 5
        assert SPACE.midpoint(990, 10) == 0

    def test_fraction_round_trip(self):
        assert SPACE.fraction_to_key(0.5) == 500
        assert SPACE.fraction_to_key(1.0) == 999  # clamped
        assert SPACE.key_to_fraction(500) == 0.5

    def test_array_distances_match_scalar(self):
        keys = np.array([0, 250, 750, 999])
        ring = SPACE.ring_distances(keys, 10)
        lin = SPACE.linear_distances(keys, 10)
        for i, k in enumerate(keys):
            assert ring[i] == SPACE.ring_distance(int(k), 10)
            assert lin[i] == SPACE.linear_distance(int(k), 10)

    def test_random_keys_in_range(self):
        rng = np.random.default_rng(0)
        ks = SPACE.random_keys(rng, 1000)
        assert ks.min() >= 0 and ks.max() < 1000

    def test_random_key_large_modulus(self):
        big = KeySpace(1 << 130)
        rng = np.random.default_rng(0)
        for _ in range(10):
            k = big.random_key(rng)
            assert 0 <= k < big.modulus

    @given(a=keys_st, b=keys_st)
    def test_ring_distance_symmetric_and_bounded(self, a, b):
        d = SPACE.ring_distance(a, b)
        assert d == SPACE.ring_distance(b, a)
        assert 0 <= d <= 500

    @given(a=keys_st, b=keys_st, c=keys_st)
    def test_ring_distance_triangle(self, a, b, c):
        assert SPACE.ring_distance(a, c) <= SPACE.ring_distance(a, b) + SPACE.ring_distance(b, c)


class TestSortedKeyRing:
    def test_add_discard_contains(self):
        ring = SortedKeyRing(SPACE, [5, 100])
        assert 5 in ring and 100 in ring and 50 not in ring
        ring.add(50)
        assert 50 in ring
        with pytest.raises(ValueError):
            ring.add(50)
        assert ring.discard(50)
        assert not ring.discard(50)

    def test_successor_predecessor_wrap(self):
        ring = SortedKeyRing(SPACE, [100, 500, 900])
        assert ring.successor(100) == 100
        assert ring.successor(101) == 500
        assert ring.successor(950) == 100  # wraps
        assert ring.predecessor(100) == 900  # wraps
        assert ring.predecessor(500) == 100

    def test_empty_ring_raises(self):
        ring = SortedKeyRing(SPACE)
        with pytest.raises(LookupError):
            ring.successor(1)
        with pytest.raises(LookupError):
            ring.closest(1)

    def test_closest_ring_metric(self):
        ring = SortedKeyRing(SPACE, [100, 900])
        assert ring.closest(950) == 900
        assert ring.closest(10) == 100  # dist 90 beats wrap dist 110
        assert ring.closest(990) == 900  # wrap dist 90 beats 110
        assert ring.closest(400) == 100

    def test_closest_tie_breaks_low(self):
        ring = SortedKeyRing(SPACE, [100, 200])
        assert ring.closest(150) == 100

    def test_closest_linear_does_not_wrap(self):
        ring = SortedKeyRing(SPACE, [100, 900])
        assert ring.closest_linear(10) == 100  # linear: 90 vs 890

    def test_rank_and_at(self):
        ring = SortedKeyRing(SPACE, [5, 50, 500])
        assert ring.rank(50) == 1
        assert ring.at(0) == 5
        assert ring.at(-1) == 500
        with pytest.raises(KeyError):
            ring.rank(51)

    def test_range_count(self):
        ring = SortedKeyRing(SPACE, [10, 20, 30, 40])
        assert ring.range_count(15, 35) == 2
        assert ring.range_count(10, 41) == 4
        assert ring.range_count(41, 999) == 0

    def test_as_array_sorted(self):
        ring = SortedKeyRing(SPACE, [30, 10, 20])
        assert list(ring.as_array()) == [10, 20, 30]

    def test_neighbors_outward_linear_order(self):
        ring = SortedKeyRing(SPACE, [10, 40, 50, 80])
        out = list(ring.neighbors_outward(45))
        # Distances: 40→5, 50→5, 10→35, 80→35; ties yield the upper side first.
        assert out == [50, 40, 80, 10]

    def test_neighbors_outward_excludes_self(self):
        ring = SortedKeyRing(SPACE, [10, 40, 80])
        out = list(ring.neighbors_outward(40))
        assert 40 not in out
        assert set(out) == {10, 80}

    def test_neighbors_outward_wrap_covers_all(self):
        ring = SortedKeyRing(SPACE, [10, 300, 600, 950])
        out = list(ring.neighbors_outward(980, wrap=True))
        assert sorted(out) == [10, 300, 600, 950]
        # nearest under wrap is 10 (dist 30), then 950 (dist 30 tie) ...
        assert set(out[:2]) == {10, 950}

    @given(st.sets(keys_st, min_size=1, max_size=30), keys_st)
    @settings(max_examples=200)
    def test_closest_matches_bruteforce(self, members, probe):
        ring = SortedKeyRing(SPACE, members)
        best = ring.closest(probe)
        brute = min(members, key=lambda k: (SPACE.ring_distance(k, probe), k))
        assert SPACE.ring_distance(best, probe) == SPACE.ring_distance(brute, probe)

    @given(st.sets(keys_st, min_size=1, max_size=20), keys_st)
    @settings(max_examples=200)
    def test_neighbors_outward_is_sorted_by_distance(self, members, probe):
        ring = SortedKeyRing(SPACE, members)
        dists = [abs(k - probe) for k in ring.neighbors_outward(probe)]
        assert dists == sorted(dists)
        expected = len(members) - (1 if probe in members else 0)
        assert len(dists) == expected

    @given(st.sets(keys_st, min_size=2, max_size=20), keys_st)
    @settings(max_examples=200)
    def test_successor_predecessor_adjacent(self, members, probe):
        ring = SortedKeyRing(SPACE, members)
        succ = ring.successor(probe)
        # No member lies strictly between probe and its successor.
        for m in members:
            if m != succ:
                assert not (probe <= m < succ) or succ < probe
