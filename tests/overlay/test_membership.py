"""Unit tests for the bootstrap join protocol and graceful leave."""

import numpy as np
import pytest

from repro.overlay.idspace import KeySpace
from repro.overlay.membership import Bootstrap, graceful_leave
from repro.overlay.tornado import TornadoOverlay
from repro.sim.network import Network
from repro.sim.node import StoredItem


def make_overlay(modulus=1 << 16):
    return TornadoOverlay(KeySpace(modulus), Network())


def uniform_namer(space):
    def name(rng):
        return int(rng.integers(0, space.modulus))

    return name


class TestBootstrap:
    def test_seed_creates_first_node(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        node = boot.seed(123)
        assert ov.size == 1
        assert node.node_id == 123

    def test_double_seed_rejected(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        boot.seed(1)
        with pytest.raises(RuntimeError):
            boot.seed(2)

    def test_join_before_seed_rejected(self):
        boot = Bootstrap(make_overlay())
        with pytest.raises(RuntimeError):
            boot.join(uniform_namer(KeySpace(16)), np.random.default_rng(0))

    def test_join_adds_node_and_charges(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        boot.seed(1)
        rng = np.random.default_rng(7)
        res = boot.join(uniform_namer(ov.space), rng)
        assert ov.size == 2
        assert res.join_messages >= 2  # request + reply at minimum
        assert ov.network.sink.count("join") >= 2

    def test_join_retries_on_collision(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        boot.seed(5)
        calls = iter([5, 5, 9])  # collide with the seed twice

        def namer(rng):
            return next(calls)

        res = boot.join(namer, np.random.default_rng(0))
        assert res.node.node_id == 9
        assert res.retries == 2

    def test_join_gives_up_after_max_retries(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        boot.seed(5)
        with pytest.raises(RuntimeError):
            boot.join(lambda rng: 5, np.random.default_rng(0), max_retries=3)

    def test_naming_info_carried(self):
        boot = Bootstrap(make_overlay(), naming_info={"knees": [1, 2]}, sample_set="S")
        assert boot.naming_info == {"knees": [1, 2]}
        assert boot.sample_set == "S"

    def test_many_joins_build_routable_overlay(self):
        ov = make_overlay()
        boot = Bootstrap(ov)
        boot.seed(100)
        rng = np.random.default_rng(11)
        for _ in range(60):
            boot.join(uniform_namer(ov.space), rng)
        assert ov.size == 61
        key = 777
        res = ov.route(100, key)
        assert res.home == ov.home(key)


class TestGracefulLeave:
    def _item(self, item_id):
        return StoredItem(item_id, 10, 10, np.array([1]), np.array([1.0]))

    def test_items_transferred_to_neighbor(self):
        ov = make_overlay()
        for nid in (100, 200, 300):
            ov.add_node(nid)
        ov.node(200).store(self._item(1))
        ov.node(200).store(self._item(2))
        moved = graceful_leave(ov, 200)
        assert moved == 2
        assert ov.size == 2
        holders = [n.node_id for n in ov.network.nodes() if n.has_item(1)]
        assert holders in ([100], [300])
        assert ov.network.sink.count("leave-transfer") == 2

    def test_last_node_drops_items(self):
        ov = make_overlay()
        ov.add_node(100)
        ov.node(100).store(self._item(1))
        moved = graceful_leave(ov, 100)
        assert moved == 0
        assert ov.size == 0

    def test_transfer_ignores_capacity(self):
        ov = make_overlay()
        ov.add_node(100, capacity=1)
        ov.add_node(200, capacity=1)
        ov.node(100).store(self._item(1))
        ov.node(200).store(self._item(2))
        moved = graceful_leave(ov, 100)
        assert moved == 1
        assert len(ov.node(200)) == 2  # over-committed, not lost
