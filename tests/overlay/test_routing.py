"""Unit tests for digit codecs and prefix routing tables."""

import pytest

from repro.overlay.idspace import KeySpace, SortedKeyRing
from repro.overlay.routing import DigitCodec, PrefixRoutingTable

SPACE = KeySpace(1 << 16)


class TestDigitCodec:
    def test_dimensions(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        assert codec.radix == 16
        assert codec.num_digits == 4  # 16 bits / 4

    def test_uneven_bits_round_up(self):
        codec = DigitCodec(KeySpace(1 << 10), digit_bits=4)
        assert codec.num_digits == 3  # ceil(10/4)

    def test_digit_extraction(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        key = 0xABCD
        assert [codec.digit(key, r) for r in range(4)] == [0xA, 0xB, 0xC, 0xD]

    def test_digit_bounds(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        with pytest.raises(IndexError):
            codec.digit(0, 4)

    def test_shared_prefix_len(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        assert codec.shared_prefix_len(0xABCD, 0xABCE) == 3
        assert codec.shared_prefix_len(0xABCD, 0xABCD) == 4
        assert codec.shared_prefix_len(0xABCD, 0x1BCD) == 0

    def test_prefix_interval(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        lo, hi = codec.prefix_interval(0xABCD, 1, 0x7)
        # first digit A fixed, second digit 7: [0xA700, 0xA800)
        assert (lo, hi) == (0xA700, 0xA800)

    def test_prefix_interval_partitions_space(self):
        codec = DigitCodec(SPACE, digit_bits=4)
        covered = 0
        for d in range(16):
            lo, hi = codec.prefix_interval(0x1234, 0, d)
            covered += hi - lo
        assert covered == SPACE.modulus

    def test_invalid_digit_bits(self):
        with pytest.raises(ValueError):
            DigitCodec(SPACE, digit_bits=0)


class TestPrefixRoutingTable:
    def make(self, members, owner=0x1000, bits=4):
        codec = DigitCodec(SPACE, bits)
        ring = SortedKeyRing(SPACE, members)
        return PrefixRoutingTable(owner, codec, ring), codec

    def test_entry_shares_prefix(self):
        members = [0x1000, 0x1F00, 0x2400, 0x9999]
        table, codec = self.make(members)
        row0 = table.row(0)
        # digit 2 at row 0 -> some member starting with 0x2
        assert row0[0x2] == 0x2400
        assert row0[0x9] == 0x9999
        assert row0[0x3] is None

    def test_row_memoised(self):
        table, _ = self.make([0x1000, 0x2400])
        assert table.populated_rows() == 0
        r1 = table.row(0)
        assert table.populated_rows() == 1
        assert table.row(0) is r1

    def test_invalidate_clears_memo(self):
        table, _ = self.make([0x1000, 0x2400])
        table.row(0)
        table.invalidate()
        assert table.populated_rows() == 0

    def test_rebind_uses_new_ring(self):
        table, _ = self.make([0x1000, 0x2400])
        assert table.row(0)[0x2] == 0x2400
        table.rebind(SortedKeyRing(SPACE, [0x1000, 0x2800]))
        assert table.row(0)[0x2] == 0x2800

    def test_next_hop_primary_extends_prefix(self):
        members = [0x1000, 0x1200, 0x1250, 0x9000]
        table, codec = self.make(members, owner=0x1000)
        cands = table.next_hop_candidates(0x1234)
        # Primary should share 2 digits (0x12..) with the key.
        assert cands[0] in (0x1200, 0x1250)
        assert codec.shared_prefix_len(cands[0], 0x1234) >= 2

    def test_next_hop_excludes_owner(self):
        table, _ = self.make([0x1000, 0x9000], owner=0x1000)
        cands = table.next_hop_candidates(0x1999)
        assert 0x1000 not in cands

    def test_next_hop_empty_when_owner_is_key(self):
        table, _ = self.make([0x1000, 0x9000], owner=0x1000)
        assert table.next_hop_candidates(0x1000) == []


class TestEntrySelector:
    def test_selector_chooses_among_block_candidates(self):
        codec = DigitCodec(SPACE, 4)
        ring = SortedKeyRing(SPACE, [0x1000, 0x2100, 0x2200, 0x2300])
        picked = []

        def selector(owner, candidates):
            picked.append((owner, list(candidates)))
            return candidates[-1]  # deliberately not the first

        table = PrefixRoutingTable(0x1000, codec, ring, selector)
        row = table.row(0)
        assert row[0x2] == 0x2300  # selector's choice, not successor(lo)
        owner, cands = picked[[p[1] for p in picked].index([0x2100, 0x2200, 0x2300])]
        assert owner == 0x1000

    def test_selector_candidate_limit(self):
        codec = DigitCodec(SPACE, 4)
        members = [0x2000 + i for i in range(30)]  # one dense block
        ring = SortedKeyRing(SPACE, [0x1000] + members)
        sizes = []

        def selector(owner, candidates):
            sizes.append(len(candidates))
            return candidates[0]

        table = PrefixRoutingTable(0x1000, codec, ring, selector)
        table.row(0)
        assert max(sizes) <= PrefixRoutingTable.CANDIDATE_LIMIT

    def test_without_selector_first_in_block(self):
        codec = DigitCodec(SPACE, 4)
        ring = SortedKeyRing(SPACE, [0x1000, 0x2100, 0x2900])
        table = PrefixRoutingTable(0x1000, codec, ring)
        assert table.row(0)[0x2] == 0x2100
