"""Unit + property tests for the Tornado-style overlay."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.idspace import KeySpace
from repro.overlay.tornado import TornadoOverlay
from repro.sim.network import Network


def make_overlay(node_ids, modulus=1 << 16, **kwargs) -> TornadoOverlay:
    space = KeySpace(modulus)
    overlay = TornadoOverlay(space, Network(), **kwargs)
    for nid in node_ids:
        overlay.add_node(nid)
    return overlay


def random_overlay(n, seed=0, modulus=1 << 16, **kwargs):
    rng = np.random.default_rng(seed)
    ids = set()
    while len(ids) < n:
        ids.add(int(rng.integers(0, modulus)))
    return make_overlay(sorted(ids), modulus=modulus, **kwargs), rng


class TestMembership:
    def test_add_and_size(self):
        ov = make_overlay([10, 20, 30])
        assert ov.size == 3
        assert [n.node_id for n in ov.nodes()] == [10, 20, 30]

    def test_duplicate_rejected_consistently(self):
        ov = make_overlay([10])
        with pytest.raises(ValueError):
            ov.add_node(10)
        assert ov.size == 1  # ring not corrupted

    def test_remove(self):
        ov = make_overlay([10, 20])
        ov.remove_node(10)
        assert ov.size == 1
        assert 10 not in ov.network


class TestHome:
    def test_home_is_ring_closest(self):
        ov = make_overlay([100, 200, 60000])
        assert ov.home(120) == 100
        assert ov.home(180) == 200
        assert ov.home(10) == 60000 or ov.home(10) == 100
        # wrap: dist(10, 60000) = 5546 vs dist(10,100)=90 -> 100
        assert ov.home(10) == 100

    def test_live_home_skips_dead(self):
        ov = make_overlay([100, 200, 300])
        ov.node(100).fail()
        assert ov.live_home(90) == 200
        ov.node(200).fail()
        assert ov.live_home(90) == 300
        ov.node(300).fail()
        assert ov.live_home(90) is None


class TestLeafSet:
    def test_leaf_set_covers_both_sides(self):
        ov = make_overlay([10, 20, 30, 40, 50], leaf_set_size=2)
        ls = ov.leaf_set(30)
        assert set(ls) == {10, 20, 40, 50}

    def test_leaf_set_small_ring(self):
        ov = make_overlay([10, 20], leaf_set_size=4)
        assert set(ov.leaf_set(10)) == {20}

    def test_singleton_has_empty_leaf_set(self):
        ov = make_overlay([10])
        assert ov.leaf_set(10) == []


class TestRouting:
    def test_route_reaches_home(self):
        ov, rng = random_overlay(200, seed=1)
        for _ in range(100):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(int(rng.integers(0, ov.size)))
            res = ov.route(origin, key)
            assert res.home == ov.home(key)
            assert res.succeeded
            assert res.path[0] == origin
            assert res.path[-1] == res.home

    def test_route_charges_one_message_per_hop(self):
        ov, rng = random_overlay(100, seed=2)
        before = ov.network.sink.count("route")
        res = ov.route(ov.ring.at(0), 1234)
        assert ov.network.sink.count("route") - before == res.hops

    def test_route_from_home_is_zero_hops(self):
        ov, _ = random_overlay(50, seed=3)
        key = 777
        home = ov.home(key)
        res = ov.route(home, key)
        assert res.hops == 0

    def test_route_is_logarithmic(self):
        ov, rng = random_overlay(512, seed=4, digit_bits=2)
        hops = []
        for _ in range(200):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(int(rng.integers(0, ov.size)))
            hops.append(ov.route(origin, key).hops)
        # log4(512) = 4.5; allow generous headroom but far below N.
        assert np.mean(hops) < 3 * math.log(512, 4)
        assert max(hops) < 30

    def test_route_detours_around_dead_nodes(self):
        ov, rng = random_overlay(100, seed=5)
        key = int(rng.integers(0, ov.space.modulus))
        home = ov.home(key)
        ov.node(home).fail()
        origin = next(nid for nid in ov.ring if nid != home)
        res = ov.route(origin, key)
        assert res.home != home
        assert res.home == ov.live_home(key)
        assert res.succeeded

    def test_route_from_dead_origin_rejected(self):
        ov = make_overlay([10, 20])
        ov.node(10).fail()
        from repro.overlay.base import RoutingError

        with pytest.raises(RoutingError):
            ov.route(10, 15)

    def test_route_unknown_origin_rejected(self):
        ov = make_overlay([10, 20])
        with pytest.raises(KeyError):
            ov.route(999, 15)

    def test_max_hops_enforced(self):
        ov, _ = random_overlay(200, seed=6)
        res = ov.route(ov.ring.at(0), 60000, max_hops=0)
        if res.home != ov.home(60000):
            assert not res.succeeded

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=50, deadline=None)
    def test_route_terminates_at_global_minimum(self, key):
        ov, _ = random_overlay(64, seed=7)
        res = ov.route(ov.ring.at(0), key)
        assert res.home == ov.home(key)


class TestStabilize:
    def test_stabilize_rebuilds_over_live_nodes(self):
        ov, rng = random_overlay(100, seed=8)
        dead = [ov.ring.at(i) for i in range(0, 100, 2)]
        ov.network.fail_nodes(dead)
        ov.stabilize()
        for _ in range(30):
            key = int(rng.integers(0, ov.space.modulus))
            origin = ov.ring.at(1)  # odd index: alive
            if not ov.network.is_alive(origin):
                continue
            res = ov.route(origin, key)
            assert res.home == ov.live_home(key)
            assert res.succeeded

    def test_membership_change_resets_view(self):
        ov, _ = random_overlay(20, seed=9)
        ov.network.fail_nodes([ov.ring.at(0)])
        ov.stabilize()
        ov.add_node(12345 if 12345 not in ov.ring else 12346)
        # After a registration the full ring is the view again.
        assert ov._view is ov.ring


class TestEpochCache:
    """The membership epoch invalidates memoised leaf sets (ROADMAP's
    route-kernel target: leaf sets are built once per epoch, not per hop)."""

    def test_leaf_set_is_memoised_within_an_epoch(self):
        ov = make_overlay([10, 20, 30, 50, 90])
        first = ov.leaf_set(30)
        assert ov.leaf_set(30) is first  # cache hit: same object back

    def test_join_bumps_epoch_and_busts_cache(self):
        ov = make_overlay([10, 20, 30, 50, 90])
        before = ov.leaf_set(30)
        epoch = ov.membership_epoch
        ov.add_node(40)
        assert ov.membership_epoch == epoch + 1
        after = ov.leaf_set(30)
        assert after is not before
        assert 40 in after

    def test_remove_bumps_epoch_and_busts_cache(self):
        ov = make_overlay([10, 20, 30, 50, 90])
        before = ov.leaf_set(30)
        epoch = ov.membership_epoch
        ov.remove_node(50)
        assert ov.membership_epoch == epoch + 1
        after = ov.leaf_set(30)
        assert after is not before
        assert 50 not in after

    def test_fail_plus_stabilize_busts_cache(self):
        # A plain fail() does not notify the overlay (stale-table
        # semantics: routing detours around the corpse) — the epoch
        # moves when stabilize() repairs the membership view.
        ov = make_overlay([10, 20, 30, 50, 90])
        before = ov.leaf_set(30)
        epoch = ov.membership_epoch
        ov.network.fail_nodes([50])
        assert ov.membership_epoch == epoch
        ov.stabilize()
        assert ov.membership_epoch == epoch + 1
        after = ov.leaf_set(30)
        assert after is not before
        assert 50 not in after  # live-only view excludes the failed node

    def test_epoch_is_monotone(self):
        ov = make_overlay([10, 20, 30])
        seen = [ov.membership_epoch]
        ov.add_node(40)
        seen.append(ov.membership_epoch)
        ov.stabilize()
        seen.append(ov.membership_epoch)
        ov.remove_node(40)
        seen.append(ov.membership_epoch)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_routes_stay_correct_across_epochs(self):
        ov, rng = random_overlay(60, seed=11)
        for _ in range(10):  # warm caches
            ov.route(ov.ring.at(0), int(rng.integers(0, ov.space.modulus)))
        new_id = 777 if 777 not in ov.ring else 778
        ov.add_node(new_id)
        # The new node must be routable-to immediately (no stale cache).
        res = ov.route(ov.ring.at(0), new_id)
        assert res.home == new_id


class TestNeighborOrder:
    def test_closest_neighbors_linear(self):
        ov = make_overlay([10, 20, 30, 50, 90])
        out = list(ov.closest_neighbors(30))
        # Distances from 30: 20→10, 10→20, 50→20 (tie upward first), 90→60.
        assert out == [20, 50, 10, 90]

    def test_closest_neighbors_skips_dead(self):
        ov = make_overlay([10, 20, 30])
        ov.node(20).fail()
        assert list(ov.closest_neighbors(10)) == [30]

    def test_replica_homes(self):
        ov = make_overlay([10, 20, 30, 40])
        homes = ov.replica_homes(20, 2)
        assert len(homes) == 2
        assert 20 not in homes
