"""Admission control: token-bucket math, shed semantics, fabric wiring."""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.overload import AdmissionController, BackpressureError, OverloadPolicy
from repro.sim.network import DeadNodeError, Network
from repro.sim.node import PeerNode


def controller(**kwargs) -> AdmissionController:
    defaults = dict(service_rate=1e-9, queue_cap=4)
    defaults.update(kwargs)
    return AdmissionController(OverloadPolicy(**defaults))


class TestTokenBucket:
    def test_backlog_grows_per_admitted_arrival(self):
        adm = controller(queue_cap=100)
        for _ in range(3):
            assert adm.try_arrive(7, "publish")
        assert adm.backlog_of(7) == pytest.approx(3.0, abs=1e-6)

    def test_backlog_drains_at_service_rate(self):
        adm = controller(service_rate=0.25, queue_cap=100)
        # Clock ticks 1..4; each arrival drains the elapsed gap first.
        for _ in range(4):
            adm.try_arrive(7, "publish")
        assert adm.backlog_of(7) == pytest.approx(3.25)
        adm.advance(13)  # 13 * 0.25 = 3.25 drained
        assert adm.backlog_of(7) == 0.0
        assert not adm.saturated(7)

    def test_clock_is_global_across_destinations(self):
        adm = controller(service_rate=0.5, queue_cap=100)
        adm.try_arrive(7, "publish")
        # Traffic at *other* nodes still drains node 7's meter.
        for _ in range(10):
            adm.try_arrive(9, "publish")
        assert adm.backlog_of(7) == 0.0

    def test_shed_raises_for_shed_kinds(self):
        adm = controller(queue_cap=2)
        assert adm.try_arrive(3, "retrieve")
        assert adm.try_arrive(3, "retrieve")
        with pytest.raises(BackpressureError) as exc:
            adm.arrive(3, "retrieve")
        assert exc.value.node_id == 3
        assert exc.value.kind == "retrieve"
        assert adm.sheds == 1

    def test_shed_leaves_backlog_unchanged(self):
        adm = controller(queue_cap=2)
        adm.try_arrive(3, "publish")
        adm.try_arrive(3, "publish")
        depth = adm.backlog_of(3)
        assert not adm.try_arrive(3, "publish")
        assert adm.backlog_of(3) == pytest.approx(depth, abs=1e-6)

    def test_control_traffic_never_refused(self):
        adm = controller(queue_cap=2)
        for _ in range(10):
            assert adm.try_arrive(3, "displace")
        # Backlog clamps at the cap instead of growing without bound...
        assert adm.backlog_of(3) <= adm.policy.queue_cap + 1e-9
        # ...and a saturated meter still sheds application traffic.
        assert not adm.try_arrive(3, "publish")

    def test_per_node_rate_override(self):
        adm = controller(service_rate=1e-9, queue_cap=100)
        adm.set_rate(5, 1.0)
        for node in (5, 6):
            for _ in range(4):
                adm.try_arrive(node, "publish")
        adm.advance(10)
        assert adm.backlog_of(5) == 0.0  # drains a full message per tick
        assert adm.backlog_of(6) == pytest.approx(4.0, abs=1e-6)
        assert adm.rate_of(5) == 1.0
        assert adm.rate_of(6) == pytest.approx(1e-9)

    def test_shed_rate_property(self):
        adm = controller(queue_cap=2)
        assert adm.shed_rate == 0.0
        adm.try_arrive(1, "publish")
        adm.try_arrive(1, "publish")
        adm.try_arrive(1, "publish")  # shed
        assert adm.admitted == 2
        assert adm.sheds == 1
        assert adm.shed_rate == pytest.approx(1 / 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"service_rate": 0.0},
            {"service_rate": -1.0},
            {"queue_cap": 0},
            {"breaker_threshold": 0},
            {"breaker_open_for": 0},
            {"breaker_probe_every": 0},
            {"divert_attempts": 0},
            {"backoff_ticks": -1.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadPolicy(**kwargs)

    def test_bad_rate_override_rejected(self):
        with pytest.raises(ValueError):
            controller().set_rate(1, 0.0)


def make_network(n: int = 3, **node_kwargs) -> Network:
    net = Network()
    for i in range(n):
        net.add_node(PeerNode(i * 10, **node_kwargs))
    return net


class TestNetworkIntegration:
    def test_default_fabric_has_no_admission(self):
        assert make_network().admission is None

    def test_send_raises_backpressure_and_still_charges(self):
        net = make_network()
        net.attach_admission(controller(queue_cap=1))
        net.send(0, 10, kind="retrieve")
        before = net.sink.total
        with pytest.raises(BackpressureError):
            net.send(0, 10, kind="retrieve")
        # The sender spent the transmission either way (DeadNodeError
        # contract, extended to sheds).
        assert net.sink.total == before + 1

    def test_dead_destination_takes_precedence_over_shed(self):
        net = make_network()
        net.attach_admission(controller(queue_cap=1))
        net.send(0, 10, kind="retrieve")
        net.fail_node(10)
        with pytest.raises(DeadNodeError):
            net.send(0, 10, kind="retrieve")

    def test_attach_seeds_per_node_service_rates(self):
        net = make_network(service_rate=0.75)
        adm = net.attach_admission(controller())
        assert adm.rate_of(0) == 0.75
        assert adm.rate_of(10) == 0.75

    def test_detach_restores_unmetered_sends(self):
        net = make_network()
        net.attach_admission(controller(queue_cap=1))
        net.send(0, 10, kind="retrieve")
        net.attach_admission(None)
        for _ in range(5):
            net.send(0, 10, kind="retrieve")  # no shed: meters detached

    def test_shed_instruments_populate(self):
        obs = Observability()
        net = Network(obs=obs)
        for i in range(2):
            net.add_node(PeerNode(i * 10))
        net.attach_admission(AdmissionController(
            OverloadPolicy(service_rate=1e-9, queue_cap=1), obs=obs
        ))
        net.send(0, 10, kind="retrieve")
        with pytest.raises(BackpressureError):
            net.send(0, 10, kind="retrieve")
        counters = obs.metrics.counters
        assert counters["overload.shed"] == 1
        assert counters["overload.shed.retrieve"] == 1
        assert obs.metrics.buckets["overload.shed_node"][10] == 1
        assert obs.metrics.distributions["overload.queue_depth"].count == 2
