"""Circuit breakers: state machine, deterministic probing, instruments."""

from __future__ import annotations

from repro.obs import Observability
from repro.overload import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    OverloadPolicy,
)


def make_adm(**kwargs) -> AdmissionController:
    defaults = dict(
        service_rate=1e-9,
        queue_cap=4,
        breaker_threshold=3,
        breaker_open_for=10,
        breaker_probe_every=2,
    )
    defaults.update(kwargs)
    obs = defaults.pop("obs", None)
    return AdmissionController(OverloadPolicy(**defaults), obs=obs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        adm = make_adm()
        assert adm.breaker.state_of(7) == CLOSED
        assert adm.breaker.allow(7)

    def test_opens_after_threshold_consecutive_sheds(self):
        adm = make_adm()
        for _ in range(2):
            adm.breaker.record_rejection(7)
        assert adm.breaker.state_of(7) == CLOSED
        adm.breaker.record_rejection(7)
        assert adm.breaker.state_of(7) == OPEN
        assert not adm.breaker.allow(7)
        assert adm.breaker.open_count() == 1

    def test_delivery_resets_the_streak(self):
        adm = make_adm()
        adm.breaker.record_rejection(7)
        adm.breaker.record_rejection(7)
        adm.breaker.record_delivery(7)
        adm.breaker.record_rejection(7)
        adm.breaker.record_rejection(7)
        assert adm.breaker.state_of(7) == CLOSED

    def test_open_turns_half_open_after_window(self):
        adm = make_adm()
        for _ in range(3):
            adm.breaker.record_rejection(7)
        assert not adm.breaker.allow(7)
        adm.advance(9)
        assert not adm.breaker.allow(7)  # window is 10 ticks
        adm.advance(1)
        adm.breaker.allow(7)
        assert adm.breaker.state_of(7) == HALF_OPEN

    def test_admitted_probe_closes(self):
        adm = make_adm()
        for _ in range(3):
            adm.breaker.record_rejection(7)
        adm.advance(10)
        # Drive probes until one is admitted by the 1-in-k sequence.
        while not adm.breaker.allow(7):
            pass
        adm.breaker.record_delivery(7)
        assert adm.breaker.state_of(7) == CLOSED

    def test_shed_probe_reopens(self):
        adm = make_adm()
        for _ in range(3):
            adm.breaker.record_rejection(7)
        adm.advance(10)
        while not adm.breaker.allow(7):
            pass
        adm.breaker.record_rejection(7)
        assert adm.breaker.state_of(7) == OPEN

    def test_per_destination_isolation(self):
        adm = make_adm()
        for _ in range(3):
            adm.breaker.record_rejection(7)
        assert adm.breaker.state_of(7) == OPEN
        assert adm.breaker.state_of(8) == CLOSED
        assert adm.breaker.allow(8)


class TestDeterministicProbing:
    def _probe_pattern(self, seed: int, node: int, n: int = 64) -> list[bool]:
        adm = make_adm(seed=seed, breaker_probe_every=4)
        for _ in range(3):
            adm.breaker.record_rejection(node)
        adm.advance(10)
        pattern = []
        for _ in range(n):
            allowed = adm.breaker.allow(node)
            pattern.append(allowed)
            if allowed:
                # Re-open so the probe ordinal keeps advancing from a
                # half-open state rather than closing the breaker.
                adm.breaker.record_rejection(node)
                adm.advance(10)
                adm.breaker.allow(node)
        return pattern

    def test_same_seed_same_pattern(self):
        assert self._probe_pattern(5, 70) == self._probe_pattern(5, 70)

    def test_different_seed_different_pattern(self):
        a = self._probe_pattern(1, 70)
        b = self._probe_pattern(2, 70)
        assert a != b

    def test_pattern_admits_roughly_one_in_k(self):
        pattern = self._probe_pattern(9, 70, n=128)
        admitted = sum(pattern)
        assert 0 < admitted < len(pattern)  # neither all-pass nor all-block


class TestMeterCoupling:
    def test_meter_sheds_feed_the_breaker(self):
        adm = make_adm(queue_cap=1)
        adm.try_arrive(7, "publish")
        for _ in range(3):
            adm.try_arrive(7, "publish")  # all shed
        assert adm.breaker.state_of(7) == OPEN

    def test_admitted_arrival_closes_via_record_delivery(self):
        adm = make_adm(queue_cap=1)
        adm.try_arrive(7, "publish")
        for _ in range(3):
            adm.try_arrive(7, "publish")  # all shed, streak -> threshold
        assert adm.breaker.state_of(7) == OPEN
        adm.set_rate(7, 0.5)  # the node recovers capacity
        adm.advance(50)  # past the open window, meter fully drained
        while not adm.breaker.allow(7):
            pass
        assert adm.try_arrive(7, "publish")  # admitted probe
        assert adm.breaker.state_of(7) == CLOSED

    def test_transitions_counted_and_instrumented(self):
        obs = Observability()
        adm = make_adm(obs=obs)
        for _ in range(3):
            adm.breaker.record_rejection(7)
        adm.advance(10)
        adm.breaker.allow(7)
        assert adm.breaker.transitions == 2  # closed->open, open->half-open
        counters = obs.metrics.counters
        assert counters["overload.breaker_open"] == 1
        assert counters["overload.breaker_half_open"] == 1
