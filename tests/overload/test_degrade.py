"""Graceful degradation: diversion, breaker fast-fail, shed publishes.

These tests exercise the full system path (route → shed → divert)
rather than the controller in isolation: a module-private published
system is built once, and each test attaches its own fresh
:class:`AdmissionController` so meters and breakers never leak between
tests.  The shared session fixture ``populated_system`` is off limits —
attaching admission to it would change behaviour for every other module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.overload import AdmissionController, BackpressureError, OverloadPolicy
from repro.overload.degrade import deliver_guarded
from repro.workload import keyword_query, nth_popular_keyword


def _saturate(adm: AdmissionController, node: int) -> None:
    """Fill ``node``'s meter to the cap without shedding anything.

    The fixture's near-zero service rate means admitted arrivals never
    drain, so the loop converges at the cap; stopping *before* the first
    shed keeps the node's breaker closed and the shed tallies at zero.
    """
    while not adm.saturated(node):
        assert adm.try_arrive(node, "publish")


@pytest.fixture(scope="module")
def published(small_trace, build_system_fn):
    """A published 120-node system of our own (module-private, mutable)."""
    system = build_system_fn(small_trace, n_nodes=120, observability=True)
    system.publish_corpus(small_trace.corpus, np.random.default_rng(17))
    return system


@pytest.fixture()
def adm(published):
    """Fresh controller per test, detached afterwards."""
    controller = AdmissionController(
        OverloadPolicy(service_rate=1e-9, queue_cap=6, divert_attempts=4),
        obs=published.obs,
    )
    published.network.attach_admission(controller)
    yield controller
    published.network.attach_admission(None)


def _origin(system, avoid: int | None = None) -> int:
    """A live node usable as a message origin (ids are not dense).

    ``avoid`` keeps the origin off the node under test: a send is only
    metered when a message actually crosses the fabric, and an origin
    that *is* the saturated home would deliver without one.
    """
    return min(i for i in system.network.alive_ids() if i != avoid)


def popular_query(trace, rank: int = 1):
    kw = nth_popular_keyword(trace.corpus, rank, max_matches=80)
    return keyword_query(trace, [kw])


class TestRetrieveDiversion:
    def test_saturated_home_diverts_with_degradation_level(
        self, published, adm, small_trace
    ):
        q = popular_query(small_trace)
        key = published.query_key(q)
        nominal = published.overlay.home(key)
        _saturate(adm, nominal)
        res = published.retrieve(_origin(published, avoid=nominal), q, 8)
        assert res.degradation_level >= 1
        assert res.degraded
        assert res.found > 0  # §3.3: the neighbor band still matches
        assert published.obs.metrics.counters["overload.diverts"] >= 1

    def test_unsaturated_home_serves_at_level_zero(self, published, adm, small_trace):
        q = popular_query(small_trace, rank=2)
        res = published.retrieve(_origin(published), q, 8)
        assert res.degradation_level == 0
        assert not res.degraded
        assert res.found > 0

    def test_divert_exhaustion_yields_incomplete_empty_result(
        self, published, small_trace
    ):
        # Saturate *every* live node: the nominal home sheds, and so does
        # each of the (few) divert candidates the policy allows.
        controller = AdmissionController(
            OverloadPolicy(service_rate=1e-9, queue_cap=4, divert_attempts=2),
            obs=published.obs,
        )
        published.network.attach_admission(controller)
        try:
            for node in published.network.alive_ids():
                _saturate(controller, node)
            q = popular_query(small_trace)
            origin = _origin(published, avoid=published.overlay.home(published.query_key(q)))
            res = published.retrieve(origin, q, 8)
            assert not res.complete
            assert res.found == 0
            assert res.degradation_level >= 1
        finally:
            published.network.attach_admission(None)


class TestPublishDiversion:
    def test_saturated_home_places_on_key_neighbor(
        self, published, adm, small_trace
    ):
        vec = small_trace.corpus.vector(0)
        _, publish_key = published.item_keys(vec.indices, vec.values)
        nominal = published.overlay.home(publish_key)
        _saturate(adm, nominal)
        item_id = small_trace.corpus.n_items + 1
        res = published.publish_vector(_origin(published, avoid=nominal), item_id, vec)
        assert res.success
        assert res.home != nominal
        # The diverted copy is really there.
        assert published.network.node(res.home).has_item(item_id)

    def test_fully_shed_publish_reports_failure(self, published, small_trace):
        controller = AdmissionController(
            OverloadPolicy(service_rate=1e-9, queue_cap=4, divert_attempts=2),
            obs=published.obs,
        )
        published.network.attach_admission(controller)
        try:
            for node in published.network.alive_ids():
                _saturate(controller, node)
            shed_before = published.obs.metrics.counters.get(
                "overload.publish_shed", 0
            )
            vec = small_trace.corpus.vector(1)
            _, pkey = published.item_keys(vec.indices, vec.values)
            item_id = small_trace.corpus.n_items + 2
            origin = _origin(published, avoid=published.overlay.home(pkey))
            res = published.publish_vector(origin, item_id, vec)
            assert not res.success
            assert res.dropped_item_id == item_id
            counters = published.obs.metrics.counters
            assert counters["overload.publish_shed"] == shed_before + 1
        finally:
            published.network.attach_admission(None)


class TestBreakerFastFail:
    def test_open_breaker_fails_before_spending_route_messages(
        self, published, adm, small_trace
    ):
        q = popular_query(small_trace)
        key = published.query_key(q)
        nominal = published.overlay.home(key)
        for _ in range(adm.policy.breaker_threshold):
            adm.breaker.record_rejection(nominal)
        before = published.network.sink.total
        fastfail_before = published.obs.metrics.counters.get(
            "overload.breaker_fastfail", 0
        )
        with pytest.raises(BackpressureError) as exc:
            deliver_guarded(published, _origin(published), key, kind="retrieve")
        assert exc.value.reason == "breaker-open"
        assert exc.value.node_id == nominal
        assert published.network.sink.total == before  # zero messages spent
        counters = published.obs.metrics.counters
        assert counters["overload.breaker_fastfail"] == fastfail_before + 1

    def test_retrieve_still_answers_while_breaker_is_open(
        self, published, adm, small_trace
    ):
        q = popular_query(small_trace)
        nominal = published.overlay.home(published.query_key(q))
        for _ in range(adm.policy.breaker_threshold):
            adm.breaker.record_rejection(nominal)
        res = published.retrieve(_origin(published, avoid=nominal), q, 8)
        assert res.degradation_level >= 1
        assert res.found > 0


class TestConfigWiring:
    def test_overload_policy_config_attaches_controller(
        self, tiny_trace, build_system_fn
    ):
        policy = OverloadPolicy(service_rate=0.5, queue_cap=16)
        system = build_system_fn(
            tiny_trace, n_nodes=40, overload_policy=policy, observability=True
        )
        assert system.network.admission is not None
        assert system.network.admission.policy is policy

    def test_mini_storm_raises_no_unhandled_exceptions(
        self, tiny_trace, build_system_fn
    ):
        # End-to-end smoke at the tightest plausible policy: every query
        # must come back as a *result* (possibly empty/degraded), never
        # as an escaped BackpressureError.
        system = build_system_fn(
            tiny_trace,
            n_nodes=40,
            observability=True,
            overload_policy=OverloadPolicy(
                service_rate=0.05, queue_cap=8, divert_attempts=3
            ),
        )
        rng = np.random.default_rng(3)
        system.publish_corpus(tiny_trace.corpus, rng)
        degraded = 0
        for i in range(40):
            q = popular_query(tiny_trace, rank=1 + (i % 3))
            res = system.retrieve(system.random_origin(rng), q, 8)
            degraded += bool(res.degradation_level)
        adm = system.network.admission
        assert adm.admitted > 0
        assert 0.0 <= adm.shed_rate < 1.0
