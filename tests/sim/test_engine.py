"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_initial_state(self):
        sim = Simulator()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.events_fired == 0

    def test_single_event_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.5]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestRunControl:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1, 2]
        assert sim.pending == 1

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_on_empty(self):
        assert Simulator().step() is False

    def test_step_fires_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert fired == [1]

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        ev.cancel()  # second cancel is a no-op, not an error
        assert ev.cancelled
        sim.run()
        assert fired == []

    def test_cancelled_excluded_from_pending(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        ev.cancel()
        assert sim.pending == 1

    def test_handle_exposes_time_and_state(self):
        sim = Simulator()
        ev = sim.schedule(4.0, lambda: None)
        assert ev.time == 4.0
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_custom_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), start_after=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        ticks = []
        task = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        task.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert task.stopped

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        task = sim.schedule_every(1.0, lambda: task.stop())
        sim.run(until=10.0)
        assert task.fire_count == 1

    def test_double_stop_is_idempotent(self):
        sim = Simulator()
        task = sim.schedule_every(1.0, lambda: None)
        task.stop()
        task.stop()  # teardown paths may stop twice; must not raise
        assert task.stopped
        sim.run(until=5.0)
        assert task.fire_count == 0

    def test_stop_then_cancel_handle_directly(self):
        # The brittle teardown order the old raising cancel broke:
        # stop the task, then cancel its handle again explicitly.
        sim = Simulator()
        task = sim.schedule_every(1.0, lambda: None)
        task.stop()
        task._handle.cancel()
        sim.run(until=3.0)
        assert task.fire_count == 0

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_fire_count(self):
        sim = Simulator()
        task = sim.schedule_every(1.0, lambda: None)
        sim.run(until=4.0)
        assert task.fire_count == 4


class TestDeterminism:
    def test_identical_runs_fire_identically(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.25, lambda i=i: log.append((i, sim.now)))
            sim.run()
            return log

        assert run_once() == run_once()
