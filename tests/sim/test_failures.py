"""Unit tests for failure/churn injection."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.failures import ChurnProcess, fail_fraction
from repro.sim.network import Network
from repro.sim.node import PeerNode


def make_network(n: int = 100) -> Network:
    net = Network()
    for i in range(n):
        net.add_node(PeerNode(i))
    return net


class TestFailFraction:
    def test_fails_requested_fraction(self):
        net = make_network(100)
        failed = fail_fraction(net, 0.3, np.random.default_rng(1))
        assert len(failed) == 30
        assert net.alive_count() == 70

    def test_zero_fraction_noop(self):
        net = make_network(10)
        assert fail_fraction(net, 0.0, np.random.default_rng(1)) == []
        assert net.alive_count() == 10

    def test_full_fraction_kills_everyone(self):
        net = make_network(10)
        fail_fraction(net, 1.0, np.random.default_rng(1))
        assert net.alive_count() == 0

    def test_spare_set_respected(self):
        net = make_network(20)
        spare = {0, 1, 2}
        fail_fraction(net, 1.0, np.random.default_rng(2), spare=spare)
        for nid in spare:
            assert net.is_alive(nid)
        assert net.alive_count() == 3

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            fail_fraction(make_network(5), 1.5, np.random.default_rng(0))

    def test_deterministic_under_seed(self):
        a = fail_fraction(make_network(50), 0.4, np.random.default_rng(7))
        b = fail_fraction(make_network(50), 0.4, np.random.default_rng(7))
        assert a == b

    def test_applies_to_alive_population_only(self):
        net = make_network(100)
        fail_fraction(net, 0.5, np.random.default_rng(1))
        fail_fraction(net, 0.5, np.random.default_rng(2))
        assert net.alive_count() == 25


class TestChurnProcess:
    def test_departures_happen_at_rate(self):
        sim = Simulator()
        net = make_network(50)
        churn = ChurnProcess(
            sim, net, np.random.default_rng(3), depart_rate=1.0
        )
        churn.start()
        sim.run(until=20.0)
        assert churn.stats.departures > 5
        assert net.alive_count() == 50 - churn.stats.departures

    def test_arrival_hook_runs(self):
        sim = Simulator()
        net = make_network(5)
        hits = []
        churn = ChurnProcess(
            sim,
            net,
            np.random.default_rng(4),
            arrive_rate=2.0,
            on_arrive=lambda: hits.append(sim.now),
        )
        churn.start()
        sim.run(until=10.0)
        assert len(hits) == churn.stats.arrivals
        assert len(hits) > 3

    def test_depart_hook_gets_victim(self):
        sim = Simulator()
        net = make_network(30)
        victims = []
        churn = ChurnProcess(
            sim,
            net,
            np.random.default_rng(5),
            depart_rate=1.0,
            on_depart=victims.append,
        )
        churn.start()
        sim.run(until=5.0)
        for v in victims:
            assert not net.is_alive(v)

    def test_stop_halts(self):
        sim = Simulator()
        net = make_network(30)
        churn = ChurnProcess(sim, net, np.random.default_rng(6), depart_rate=1.0)
        churn.start()
        sim.run(until=3.0)
        count = churn.stats.departures
        churn.stop()
        sim.run(until=30.0)
        assert churn.stats.departures == count

    def test_double_start_rejected(self):
        sim = Simulator()
        churn = ChurnProcess(sim, make_network(3), np.random.default_rng(0), depart_rate=1.0)
        churn.start()
        with pytest.raises(RuntimeError):
            churn.start()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnProcess(Simulator(), make_network(3), np.random.default_rng(0), depart_rate=-1)
