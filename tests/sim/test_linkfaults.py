"""Link-fault plane: determinism, conservation, partition semantics.

The plane's contract is that fault injection is (a) byte-identical
across runs with the same seed and send sequence, (b) conserved —
every charged message is classified exactly once — and (c) invisible
when detached or configured to zero.  The chaos harness leans on all
three; these tests pin them at the unit level.
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.sim.engine import Simulator
from repro.sim.linkfaults import LinkFaultPlane, MessageLossError
from repro.sim.network import DeadNodeError, Network
from repro.sim.node import PeerNode


def make_net(n: int = 10, *, simulator=None, obs=None) -> Network:
    net = Network(simulator=simulator, obs=obs)
    for i in range(n):
        net.add_node(PeerNode(i))
    return net


def drive(net: Network, sends) -> list[bool]:
    """Replay a (src, dst) send sequence; True = delivered."""
    outcomes = []
    for src, dst in sends:
        try:
            net.send(src, dst, kind="route")
            outcomes.append(True)
        except MessageLossError:
            outcomes.append(False)
    return outcomes


SENDS = [(i % 7, (i * 3 + 1) % 7) for i in range(200)]


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        runs = []
        for _ in range(2):
            net = make_net()
            plane = net.attach_link_faults(
                LinkFaultPlane(seed=42, drop_prob=0.3, dup_prob=0.2)
            )
            runs.append((drive(net, SENDS), plane.snapshot()))
        assert runs[0] == runs[1]

    def test_different_seed_different_verdicts(self):
        outcomes = []
        for seed in (1, 2):
            net = make_net()
            net.attach_link_faults(LinkFaultPlane(seed=seed, drop_prob=0.3))
            outcomes.append(drive(net, SENDS))
        assert outcomes[0] != outcomes[1]

    def test_async_jitter_sequence_identical_across_runs(self):
        schedules = []
        for _ in range(2):
            sim = Simulator()
            net = make_net(simulator=sim)
            net.attach_link_faults(
                LinkFaultPlane(seed=9, drop_prob=0.1, dup_prob=0.2, delay_jitter=3.0)
            )
            times: list[tuple[float, int]] = []
            for i, (src, dst) in enumerate(SENDS):
                net.send_after(
                    1.0, src, dst,
                    lambda node, i=i: times.append((sim.now, i)),
                )
            sim.run()
            schedules.append(times)
        assert schedules[0] == schedules[1]
        # Jitter actually moved deliveries off the nominal delay.
        assert any(t != 1.0 for t, _ in schedules[0])


class TestConservation:
    def test_sync_accounting_conserved(self):
        net = make_net()
        plane = net.attach_link_faults(
            LinkFaultPlane(seed=7, drop_prob=0.25, dup_prob=0.25)
        )
        drive(net, SENDS)
        assert plane.conserved()
        assert plane.dropped > 0 and plane.duplicated > 0
        assert plane.charged == len(SENDS) + plane.duplicated

    def test_async_accounting_conserved(self):
        sim = Simulator()
        net = make_net(simulator=sim)
        plane = net.attach_link_faults(
            LinkFaultPlane(seed=8, drop_prob=0.25, dup_prob=0.25, delay_jitter=2.0)
        )
        hits = []
        for src, dst in SENDS:
            net.send_after(0.5, src, dst, lambda node: hits.append(node.node_id))
        sim.run()
        assert plane.conserved()
        # Originals delivered + duplicate deliveries, minus nothing (all alive).
        assert len(hits) == plane.delivered + plane.duplicated

    def test_duplicate_is_charged_to_the_sink(self):
        net = make_net()
        plane = net.attach_link_faults(LinkFaultPlane(seed=3, dup_prob=1.0))
        before = net.sink.total
        net.send(0, 1, kind="route")
        assert plane.duplicated == 1
        assert net.sink.total == before + 2  # original + duplicate

    def test_zero_config_plane_is_transparent(self):
        net = make_net()
        plane = net.attach_link_faults(LinkFaultPlane(seed=5))
        outcomes = drive(net, SENDS)
        assert all(outcomes)
        assert plane.snapshot() == {
            "charged": len(SENDS), "delivered": len(SENDS), "dropped": 0,
            "partition_dropped": 0, "duplicated": 0, "delayed": 0,
            "splits": 0, "heals": 0,
        }


class TestPartition:
    def test_cut_drops_exactly_the_crossing_messages(self):
        net = make_net()
        plane = net.attach_link_faults(LinkFaultPlane(seed=1))
        net.partition_nodes({0, 1, 2})
        assert plane.partitioned
        with pytest.raises(MessageLossError) as exc:
            net.send(0, 5)
        assert exc.value.reason == "partition"
        with pytest.raises(MessageLossError):
            net.send(5, 0)  # symmetric
        net.send(0, 1)  # intra-minority passes
        net.send(5, 6)  # intra-majority passes
        assert plane.partition_dropped == 2
        assert plane.conserved()

    def test_heal_restores_and_is_idempotent(self):
        net = make_net()
        plane = net.attach_link_faults(LinkFaultPlane(seed=1))
        net.partition_nodes({0, 1})
        assert net.heal_partition() == 2
        assert not plane.partitioned
        net.send(0, 5)
        assert net.heal_partition() == 0  # no-op second time
        assert plane.splits == 1 and plane.heals == 1

    def test_partition_requires_a_plane(self):
        net = make_net()
        with pytest.raises(RuntimeError):
            net.partition_nodes({0, 1})

    def test_async_cut_never_schedules(self):
        sim = Simulator()
        net = make_net(simulator=sim)
        net.attach_link_faults(LinkFaultPlane(seed=2))
        net.partition_nodes({0})
        hits = []
        net.send_after(1.0, 0, 5, lambda node: hits.append(node.node_id))
        sim.run()
        assert hits == []


class TestErrorsAndDegradation:
    def test_loss_error_is_a_dead_node_error(self):
        assert issubclass(MessageLossError, DeadNodeError)

    def test_try_send_degrades_under_certain_loss(self):
        net = make_net()
        net.attach_link_faults(LinkFaultPlane(seed=4, drop_prob=1.0))
        assert net.try_send(0, 1) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": -0.1},
            {"drop_prob": 1.1},
            {"dup_prob": 2.0},
            {"delay_jitter": -1.0},
        ],
    )
    def test_bad_probabilities_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkFaultPlane(seed=0, **kwargs)


class TestAsyncDeadDropCounter:
    def test_dead_destination_at_delivery_is_counted(self):
        sim = Simulator()
        obs = Observability()
        net = make_net(simulator=sim, obs=obs)
        hits = []
        net.send_after(2.0, 0, 5, lambda node: hits.append(node.node_id))
        net.fail_nodes([5])
        sim.run()
        assert hits == []
        snap = obs.metrics.snapshot()["counters"]
        assert snap.get("net.async_dead_dropped") == 1
