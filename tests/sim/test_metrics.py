"""Unit tests for message/hop accounting."""

import numpy as np
import pytest

from repro.sim.metrics import (
    HopHistogram,
    MetricSink,
    QueryTrace,
    SinkDistribution,
    percentile_summary,
)


class TestMetricSink:
    def test_empty_sink(self):
        sink = MetricSink()
        assert sink.total == 0
        assert sink.count("route") == 0

    def test_charge_accumulates(self):
        sink = MetricSink()
        sink.charge("route")
        sink.charge("route", 3)
        sink.charge("publish", 2)
        assert sink.count("route") == 4
        assert sink.count("publish") == 2
        assert sink.total == 6

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MetricSink().charge("route", -1)

    def test_snapshot_is_a_copy(self):
        sink = MetricSink()
        sink.charge("a")
        snap = sink.snapshot()
        sink.charge("a")
        assert snap == {"a": 1}
        assert sink.count("a") == 2

    def test_diff_reports_only_changes(self):
        sink = MetricSink()
        sink.charge("a", 2)
        sink.charge("b", 1)
        before = sink.snapshot()
        sink.charge("a", 3)
        sink.charge("c", 1)
        assert sink.diff(before) == {"a": 3, "c": 1}

    def test_reset(self):
        sink = MetricSink()
        sink.charge("x", 5)
        sink.reset()
        assert sink.total == 0

    def test_merge(self):
        a, b = MetricSink(), MetricSink()
        a.charge("r", 1)
        b.charge("r", 2)
        b.charge("s", 3)
        a.merge(b)
        assert a.count("r") == 3
        assert a.count("s") == 3

    def test_merge_disjoint_categories(self):
        a, b = MetricSink(), MetricSink()
        a.charge("route", 2)
        b.charge("flood", 5)
        a.merge(b)
        assert a.snapshot() == {"route": 2, "flood": 5}
        assert b.snapshot() == {"flood": 5}  # the merged-from sink is untouched

    def test_diff_against_disjoint_snapshot(self):
        # A snapshot category the sink never charged must not appear in
        # the diff (and must not go negative).
        sink = MetricSink()
        sink.charge("route", 2)
        before = {"publish": 4}
        assert sink.diff(before) == {"route": 2}


class TestQueryTrace:
    def test_hops_is_path_minus_origin(self):
        t = QueryTrace(origin=1, target_key=10)
        assert t.hops == 0
        t.visit(1)
        assert t.hops == 0
        t.visit(2)
        t.visit(3)
        assert t.hops == 2


class TestHopHistogram:
    def test_empty_raises(self):
        h = HopHistogram()
        with pytest.raises(ValueError):
            _ = h.mean
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            HopHistogram().add(-1)

    def test_mean_and_max(self):
        h = HopHistogram()
        h.extend([1, 2, 3, 2])
        assert h.mean == pytest.approx(2.0)
        assert h.max == 3
        assert len(h) == 4

    def test_quantiles(self):
        h = HopHistogram()
        h.extend([1] * 50 + [2] * 40 + [10] * 10)
        assert h.quantile(0.5) == 1
        assert h.quantile(0.9) == 2
        assert h.quantile(0.99) == 10
        assert h.quantile(1.0) == 10

    def test_quantile_extremes(self):
        h = HopHistogram()
        h.extend([2, 5, 9])
        # q=0 needs zero mass, satisfied by the smallest bin; q=1 needs
        # all mass, satisfied only by the largest.
        assert h.quantile(0.0) == 2
        assert h.quantile(1.0) == 9

    def test_quantile_extremes_single_bin(self):
        h = HopHistogram()
        h.add(4)
        assert h.quantile(0.0) == 4
        assert h.quantile(1.0) == 4

    def test_quantile_bounds_checked(self):
        h = HopHistogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_cdf_monotone_ends_at_one(self):
        h = HopHistogram()
        h.extend([3, 1, 1, 7, 3])
        hops, frac = h.cdf()
        assert list(hops) == [1, 3, 7]
        assert frac[-1] == pytest.approx(1.0)
        assert np.all(np.diff(frac) > 0)

    def test_empty_cdf(self):
        hops, frac = HopHistogram().cdf()
        assert hops.size == 0 and frac.size == 0

    def test_as_dict(self):
        h = HopHistogram()
        h.extend([2, 2, 5])
        assert h.as_dict() == {2: 2, 5: 1}


class TestPercentileSummary:
    def test_fields(self):
        s = percentile_summary(range(101))
        assert s["mean"] == pytest.approx(50.0)
        assert s["p50"] == pytest.approx(50.0)
        assert s["p95"] == pytest.approx(95.0)
        assert s["max"] == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary([])

    def test_single_element(self):
        s = percentile_summary([7.0])
        assert s == {
            "mean": 7.0,
            "p50": 7.0,
            "p95": 7.0,
            "p99": 7.0,
            "max": 7.0,
        }


class TestSinkDistribution:
    def test_exact_moments(self):
        d = SinkDistribution()
        for v in (2.0, 4.0, 9.0):
            d.record(v)
        assert d.count == 3
        assert d.total == pytest.approx(15.0)
        assert d.sq_total == pytest.approx(4 + 16 + 81)
        assert d.mean == pytest.approx(5.0)
        assert (d.min, d.max) == (2.0, 9.0)

    def test_merge_associative_and_commutative(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(-5, 5, 30)
        parts = [SinkDistribution() for _ in range(3)]
        for i, v in enumerate(samples):
            parts[i % 3].record(float(v))

        def fold(order):
            acc = SinkDistribution()
            for p in order:
                acc.merge(p.copy())
            return acc

        left = fold(parts)
        right = fold(parts[::-1])
        one = SinkDistribution()
        for v in samples:
            one.record(float(v))
        for d in (left, right):
            assert d.count == one.count
            assert d.total == pytest.approx(one.total)
            assert d.sq_total == pytest.approx(one.sq_total)
            assert (d.min, d.max) == (one.min, one.max)

    def test_empty_as_dict(self):
        assert SinkDistribution().as_dict() == {"count": 0}


class TestSinkDeltaProtocol:
    def test_checkpoint_cuts_and_resets(self):
        sink = MetricSink(source="shard-0")
        sink.charge("route", 4)
        sink.observe("walk", 7.0)
        delta = sink.checkpoint()
        assert delta.source == "shard-0" and delta.seq == 0
        assert delta.counts == {"route": 4}
        assert delta.distributions["walk"].count == 1
        assert sink.total == 0 and sink.distributions == {}
        assert sink.checkpoint().seq == 1

    def test_stamped_delta_merges_once(self):
        worker = MetricSink(source="shard-1")
        worker.charge("publish", 5)
        worker.observe("items", 3.0)
        delta = worker.checkpoint()
        master = MetricSink()
        assert master.merge(delta) is True
        assert master.merge(delta) is False  # re-delivery: dropped
        assert master.count("publish") == 5
        assert master.distributions["items"].count == 1

    def test_distinct_seqs_both_fold(self):
        worker = MetricSink(source="shard-1")
        worker.charge("route", 1)
        d0 = worker.checkpoint()
        worker.charge("route", 2)
        d1 = worker.checkpoint()
        master = MetricSink()
        assert master.merge(d0) and master.merge(d1)
        assert master.count("route") == 3

    def test_unstamped_delta_always_folds(self):
        sink = MetricSink()  # source=None -> unstamped snapshots
        sink.charge("route", 1)
        delta = sink.checkpoint()
        master = MetricSink()
        assert master.merge(delta) and master.merge(delta)
        assert master.count("route") == 2

    def test_merge_grouping_invariant(self):
        """Pairwise vs flat merges of per-shard deltas agree exactly."""
        deltas = []
        for s in range(4):
            w = MetricSink(source=f"shard-{s}")
            w.charge("route", s + 1)
            w.observe("walk", float(s))
            deltas.append(w.checkpoint())
        flat = MetricSink()
        for d in deltas:
            flat.merge(d)
        grouped = MetricSink()
        left, right = MetricSink(), MetricSink()
        for d in deltas[:2]:
            left.merge(d)
        for d in deltas[2:]:
            right.merge(d)
        grouped.merge(left)
        grouped.merge(right)
        assert grouped.snapshot() == flat.snapshot()
        assert (
            grouped.distributions["walk"].as_dict()
            == flat.distributions["walk"].as_dict()
        )

    def test_timer_context_manager(self):
        sink = MetricSink()
        with sink.time("region"):
            sum(range(1000))
        t = sink.timers["region"]
        assert t.wall.count == 1 and t.cpu.count == 1
        assert t.wall.total >= 0.0
