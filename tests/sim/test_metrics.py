"""Unit tests for message/hop accounting."""

import numpy as np
import pytest

from repro.sim.metrics import HopHistogram, MetricSink, QueryTrace, percentile_summary


class TestMetricSink:
    def test_empty_sink(self):
        sink = MetricSink()
        assert sink.total == 0
        assert sink.count("route") == 0

    def test_charge_accumulates(self):
        sink = MetricSink()
        sink.charge("route")
        sink.charge("route", 3)
        sink.charge("publish", 2)
        assert sink.count("route") == 4
        assert sink.count("publish") == 2
        assert sink.total == 6

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MetricSink().charge("route", -1)

    def test_snapshot_is_a_copy(self):
        sink = MetricSink()
        sink.charge("a")
        snap = sink.snapshot()
        sink.charge("a")
        assert snap == {"a": 1}
        assert sink.count("a") == 2

    def test_diff_reports_only_changes(self):
        sink = MetricSink()
        sink.charge("a", 2)
        sink.charge("b", 1)
        before = sink.snapshot()
        sink.charge("a", 3)
        sink.charge("c", 1)
        assert sink.diff(before) == {"a": 3, "c": 1}

    def test_reset(self):
        sink = MetricSink()
        sink.charge("x", 5)
        sink.reset()
        assert sink.total == 0

    def test_merge(self):
        a, b = MetricSink(), MetricSink()
        a.charge("r", 1)
        b.charge("r", 2)
        b.charge("s", 3)
        a.merge(b)
        assert a.count("r") == 3
        assert a.count("s") == 3

    def test_merge_disjoint_categories(self):
        a, b = MetricSink(), MetricSink()
        a.charge("route", 2)
        b.charge("flood", 5)
        a.merge(b)
        assert a.snapshot() == {"route": 2, "flood": 5}
        assert b.snapshot() == {"flood": 5}  # the merged-from sink is untouched

    def test_diff_against_disjoint_snapshot(self):
        # A snapshot category the sink never charged must not appear in
        # the diff (and must not go negative).
        sink = MetricSink()
        sink.charge("route", 2)
        before = {"publish": 4}
        assert sink.diff(before) == {"route": 2}


class TestQueryTrace:
    def test_hops_is_path_minus_origin(self):
        t = QueryTrace(origin=1, target_key=10)
        assert t.hops == 0
        t.visit(1)
        assert t.hops == 0
        t.visit(2)
        t.visit(3)
        assert t.hops == 2


class TestHopHistogram:
    def test_empty_raises(self):
        h = HopHistogram()
        with pytest.raises(ValueError):
            _ = h.mean
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            HopHistogram().add(-1)

    def test_mean_and_max(self):
        h = HopHistogram()
        h.extend([1, 2, 3, 2])
        assert h.mean == pytest.approx(2.0)
        assert h.max == 3
        assert len(h) == 4

    def test_quantiles(self):
        h = HopHistogram()
        h.extend([1] * 50 + [2] * 40 + [10] * 10)
        assert h.quantile(0.5) == 1
        assert h.quantile(0.9) == 2
        assert h.quantile(0.99) == 10
        assert h.quantile(1.0) == 10

    def test_quantile_extremes(self):
        h = HopHistogram()
        h.extend([2, 5, 9])
        # q=0 needs zero mass, satisfied by the smallest bin; q=1 needs
        # all mass, satisfied only by the largest.
        assert h.quantile(0.0) == 2
        assert h.quantile(1.0) == 9

    def test_quantile_extremes_single_bin(self):
        h = HopHistogram()
        h.add(4)
        assert h.quantile(0.0) == 4
        assert h.quantile(1.0) == 4

    def test_quantile_bounds_checked(self):
        h = HopHistogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_cdf_monotone_ends_at_one(self):
        h = HopHistogram()
        h.extend([3, 1, 1, 7, 3])
        hops, frac = h.cdf()
        assert list(hops) == [1, 3, 7]
        assert frac[-1] == pytest.approx(1.0)
        assert np.all(np.diff(frac) > 0)

    def test_empty_cdf(self):
        hops, frac = HopHistogram().cdf()
        assert hops.size == 0 and frac.size == 0

    def test_as_dict(self):
        h = HopHistogram()
        h.extend([2, 2, 5])
        assert h.as_dict() == {2: 2, 5: 1}


class TestPercentileSummary:
    def test_fields(self):
        s = percentile_summary(range(101))
        assert s["mean"] == pytest.approx(50.0)
        assert s["p50"] == pytest.approx(50.0)
        assert s["p95"] == pytest.approx(95.0)
        assert s["max"] == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary([])

    def test_single_element(self):
        s = percentile_summary([7.0])
        assert s == {
            "mean": 7.0,
            "p50": 7.0,
            "p95": 7.0,
            "p99": 7.0,
            "max": 7.0,
        }
