"""Unit tests for the message fabric."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import DeadNodeError, Network
from repro.sim.node import PeerNode, StoredItem


def make_network(n: int = 3) -> Network:
    net = Network()
    for i in range(n):
        net.add_node(PeerNode(i * 10))
    return net


class TestMembership:
    def test_add_and_lookup(self):
        net = make_network()
        assert len(net) == 3
        assert 10 in net
        assert net.node(10).node_id == 10

    def test_duplicate_id_rejected(self):
        net = make_network()
        with pytest.raises(ValueError):
            net.add_node(PeerNode(0))

    def test_remove(self):
        net = make_network()
        removed = net.remove_node(10)
        assert removed.node_id == 10
        assert 10 not in net
        with pytest.raises(KeyError):
            net.remove_node(10)

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError):
            make_network().node(999)

    def test_alive_tracking(self):
        net = make_network()
        net.node(10).fail()
        assert not net.is_alive(10)
        assert net.is_alive(0)
        assert net.alive_count() == 2
        assert sorted(net.alive_ids()) == [0, 20]
        assert not net.is_alive(999)  # unknown id is not alive


class TestSend:
    def test_send_charges_and_returns_node(self):
        net = make_network()
        node = net.send(0, 10, kind="route")
        assert node.node_id == 10
        assert net.sink.count("route") == 1

    def test_send_to_dead_charges_then_raises(self):
        net = make_network()
        net.node(10).fail()
        with pytest.raises(DeadNodeError):
            net.send(0, 10)
        assert net.sink.count("route") == 1

    def test_send_to_unknown_raises(self):
        net = make_network()
        with pytest.raises(DeadNodeError):
            net.send(0, 12345)

    def test_try_send_returns_none_for_dead(self):
        net = make_network()
        net.node(10).fail()
        assert net.try_send(0, 10) is None
        assert net.try_send(0, 20) is not None


class TestSendAfter:
    def test_delivery_through_simulator(self):
        sim = Simulator()
        net = Network(simulator=sim)
        net.add_node(PeerNode(1))
        net.add_node(PeerNode(2))
        got = []
        net.send_after(3.0, 1, 2, lambda node: got.append((sim.now, node.node_id)))
        assert net.sink.total == 1  # charged at send time
        sim.run()
        assert got == [(3.0, 2)]

    def test_in_flight_loss_on_failure(self):
        sim = Simulator()
        net = Network(simulator=sim)
        net.add_node(PeerNode(1))
        net.add_node(PeerNode(2))
        got = []
        net.send_after(3.0, 1, 2, lambda node: got.append(node.node_id))
        sim.schedule(1.0, lambda: net.node(2).fail())
        sim.run()
        assert got == []

    def test_requires_simulator(self):
        net = make_network()
        with pytest.raises(RuntimeError):
            net.send_after(1.0, 0, 10, lambda n: None)


class TestBulk:
    def test_fail_nodes_counts_transitions(self):
        net = make_network()
        assert net.fail_nodes([0, 10]) == 2
        assert net.fail_nodes([0, 20, 999]) == 1

    def test_total_items(self):
        net = make_network()
        item = StoredItem(1, 0, 0, np.array([1]), np.array([1.0]))
        net.node(0).store(item)
        net.node(10).store(item)
        assert net.total_items() == 2
        net.node(10).fail()
        assert net.total_items() == 1
        assert net.total_items(include_dead=True) == 2
