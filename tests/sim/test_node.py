"""Unit tests for the peer node storage model."""

import numpy as np
import pytest

from repro.sim.node import CapacityError, DirectoryPointer, PeerNode, StoredItem


def make_item(item_id: int, key: int = 100, kws=(1, 2)) -> StoredItem:
    kw = np.asarray(kws, dtype=np.int64)
    return StoredItem(
        item_id=item_id,
        publish_key=key,
        angle_key=key,
        keyword_ids=kw,
        weights=np.ones(len(kw)),
    )


class TestStoredItem:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            StoredItem(1, 0, 0, np.array([1, 2]), np.array([1.0]))

    def test_replica_flag(self):
        assert not make_item(1).is_replica
        replica = StoredItem(
            1, 0, 0, np.array([1]), np.array([1.0]), replica_of=42
        )
        assert replica.is_replica


class TestCapacity:
    def test_unbounded_by_default(self):
        node = PeerNode(5)
        for i in range(100):
            node.store(make_item(i))
        assert len(node) == 100
        assert not node.is_full
        assert node.free_slots is None

    def test_capacity_enforced(self):
        node = PeerNode(5, capacity=2)
        node.store(make_item(1))
        node.store(make_item(2))
        assert node.is_full
        assert node.free_slots == 0
        with pytest.raises(CapacityError):
            node.store(make_item(3))

    def test_restore_same_item_allowed_when_full(self):
        node = PeerNode(5, capacity=1)
        node.store(make_item(1, key=10))
        node.store(make_item(1, key=20))  # republish replaces in place
        assert node.get_item(1).publish_key == 20
        assert len(node) == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PeerNode(1, capacity=0)

    def test_evict_frees_slot(self):
        node = PeerNode(5, capacity=1)
        node.store(make_item(1))
        evicted = node.evict(1)
        assert evicted.item_id == 1
        assert not node.is_full
        node.store(make_item(2))

    def test_evict_missing_raises(self):
        with pytest.raises(KeyError):
            PeerNode(5).evict(99)

    def test_utilization(self):
        node = PeerNode(5)
        for i in range(10):
            node.store(make_item(i))
        assert node.utilization(5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            node.utilization(0.0)


class TestAccessors:
    def test_has_get_items(self):
        node = PeerNode(5)
        node.store(make_item(7))
        assert node.has_item(7)
        assert not node.has_item(8)
        assert node.get_item(7).item_id == 7
        assert [i.item_id for i in node.items()] == [7]
        assert list(node.item_ids()) == [7]


class TestPointers:
    def make_pointer(self, item_id=1):
        return DirectoryPointer(
            item_id=item_id, angle_key=5, body_key=9, keyword_ids=np.array([1])
        )

    def test_pointers_do_not_consume_capacity(self):
        node = PeerNode(5, capacity=1)
        node.store(make_item(1))
        for i in range(10):
            node.add_pointer(self.make_pointer(i))
        assert node.pointer_count() == 10
        assert node.is_full  # still only one *item*

    def test_drop_pointer(self):
        node = PeerNode(5)
        node.add_pointer(self.make_pointer(3))
        assert node.drop_pointer(3)
        assert not node.drop_pointer(3)
        assert node.pointer_count() == 0

    def test_pointer_overwrite_by_item_id(self):
        node = PeerNode(5)
        node.add_pointer(self.make_pointer(3))
        node.add_pointer(self.make_pointer(3))
        assert node.pointer_count() == 1


class TestLifecycle:
    def test_fail_and_recover_preserves_items(self):
        node = PeerNode(5)
        node.store(make_item(1))
        node.fail()
        assert not node.alive
        assert node.has_item(1)
        node.recover()
        assert node.alive
