"""Asynchronous delivery failure paths: in-flight deaths, saturated drops.

``send_after`` charges at send time and decides deliverability at
*delivery* time — a node that dies (or saturates) while the message is
in flight swallows the handler silently.  These are the paths the churn
scenarios rely on but never assert directly.
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.overload import AdmissionController, OverloadPolicy
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import PeerNode


def make_net(n: int = 3, obs: Observability | None = None) -> tuple[Network, Simulator]:
    sim = Simulator()
    net = Network(simulator=sim, obs=obs)
    for i in range(n):
        net.add_node(PeerNode(i * 10))
    return net, sim


def test_requires_a_simulator():
    net = Network()
    net.add_node(PeerNode(0))
    with pytest.raises(RuntimeError):
        net.send_after(1.0, 0, 0, lambda node: None)


def test_delivers_to_live_destination():
    net, sim = make_net()
    got: list[int] = []
    net.send_after(1.0, 0, 10, lambda node: got.append(node.node_id))
    assert got == []  # nothing until the engine advances
    sim.run()
    assert got == [10]


def test_charged_at_send_time_even_when_dropped():
    net, sim = make_net()
    net.send_after(1.0, 0, 10, lambda node: None, kind="replicate")
    charged = net.sink.total
    assert charged == 1
    net.fail_node(10)
    sim.run()
    assert net.sink.total == charged  # delivery never re-charges


def test_destination_dies_in_flight_drops_silently():
    net, sim = make_net()
    got: list[int] = []
    net.send_after(2.0, 0, 10, lambda node: got.append(node.node_id))
    sim.schedule(1.0, lambda: net.fail_node(10))
    sim.run()
    assert got == []


def test_destination_removed_in_flight_drops_silently():
    net, sim = make_net()
    got: list[int] = []
    net.send_after(2.0, 0, 10, lambda node: got.append(node.node_id))
    sim.schedule(1.0, lambda: net.remove_node(10))
    sim.run()
    assert got == []


def test_recovery_before_delivery_restores_the_handler():
    net, sim = make_net()
    got: list[int] = []
    net.send_after(3.0, 0, 10, lambda node: got.append(node.node_id))
    sim.schedule(1.0, lambda: net.fail_node(10))
    sim.schedule(2.0, lambda: net.recover_node(10))
    sim.run()
    assert got == [10]


class TestSaturatedInboxDrops:
    def _saturated_net(self) -> tuple[Network, Simulator, Observability]:
        obs = Observability()
        net, sim = make_net(obs=obs)
        adm = AdmissionController(
            OverloadPolicy(service_rate=1e-9, queue_cap=2), obs=obs
        )
        net.attach_admission(adm)
        while not adm.saturated(10):
            adm.try_arrive(10, "publish")
        return net, sim, obs

    def test_saturated_delivery_dropped_and_counted(self):
        net, sim, obs = self._saturated_net()
        got: list[int] = []
        net.send_after(1.0, 0, 10, lambda node: got.append(node.node_id), kind="publish")
        sim.run()
        assert got == []
        assert obs.metrics.counters["overload.async_dropped"] == 1

    def test_unsaturated_destination_still_delivers(self):
        net, sim, obs = self._saturated_net()
        got: list[int] = []
        net.send_after(1.0, 0, 20, lambda node: got.append(node.node_id), kind="publish")
        sim.run()
        assert got == [20]
        assert "overload.async_dropped" not in obs.metrics.counters

    def test_control_kind_delivers_through_saturation(self):
        net, sim, obs = self._saturated_net()
        got: list[int] = []
        net.send_after(1.0, 0, 10, lambda node: got.append(node.node_id), kind="repair")
        sim.run()
        assert got == [10]  # control traffic is never dropped

    def test_metering_happens_at_delivery_time(self):
        # The inbox saturates only *after* the message is already in
        # flight — the delivery-time meter is what drops it.
        obs = Observability()
        net, sim = make_net(obs=obs)
        adm = AdmissionController(
            OverloadPolicy(service_rate=1e-9, queue_cap=2), obs=obs
        )
        net.attach_admission(adm)
        got: list[int] = []
        net.send_after(2.0, 0, 10, lambda node: got.append(node.node_id), kind="publish")

        def saturate() -> None:
            while not adm.saturated(10):
                adm.try_arrive(10, "publish")

        sim.schedule(1.0, saturate)
        sim.run()
        assert got == []
        assert obs.metrics.counters["overload.async_dropped"] == 1
