"""Twin tests: the sharded simulator vs the single-process engine.

The contract under test is the module's headline guarantee — a sharded
run at matched seed is *bit-identical* to the single-process run in
placements, message bill, per-node loads and full retrieve results, for
every shard count and for partitions that wrap rank 0.  The serial
backend is the reference (deterministic, in-process); one fork-backend
case checks the pipe transport ships the same bytes.
"""

import numpy as np
import pytest

from repro.core import PlacementScheme
from repro.core.meteorograph import Meteorograph, MeteorographConfig
from repro.experiments.common import build_system, default_trace
from repro.sim.shard import (
    ShardCapacityError,
    ShardConfigError,
    ShardSpec,
    ShardWalkError,
    ShardedSimulator,
)

SEED = 42
N_NODES = 150
N_QUERIES = 40


@pytest.fixture(scope="module")
def trace():
    return default_trace(n_items=1200, n_keywords=500, scale=1.0)


@pytest.fixture(scope="module")
def builder(trace):
    def build():
        return build_system(
            trace, N_NODES, PlacementScheme.UNUSED_HASH,
            rng=np.random.default_rng(SEED),
        )

    return build


@pytest.fixture(scope="module")
def workload(trace, builder):
    system = builder()
    ring = system.overlay.ring.as_array()
    rng = np.random.default_rng(9)
    q_idx = rng.integers(0, trace.corpus.n_items, N_QUERIES)
    queries = [trace.corpus.vector(int(i)) for i in q_idx]
    origins = [int(ring[i]) for i in rng.integers(0, ring.size, N_QUERIES)]
    return origins, queries


@pytest.fixture(scope="module")
def reference(trace, builder, workload):
    """Single-process run: publish results, retrieve results, bill, loads."""
    origins, queries = workload
    system = builder()
    publish = system.publish_corpus(
        trace.corpus, np.random.default_rng(7), batch=True
    )
    retrieve = system.retrieve_many(origins, queries, 5)
    return {
        "system": system,
        "publish": publish,
        "retrieve": retrieve,
        "bill": system.network.sink.snapshot(),
        "loads": system.loads(),
    }


def assert_twin(sim, trace, workload, reference):
    origins, queries = workload
    publish = sim.publish_corpus(trace.corpus, np.random.default_rng(7))
    retrieve = sim.retrieve_many(origins, queries, 5)
    assert len(publish) == len(reference["publish"])
    for a, b in zip(reference["publish"], publish):
        assert (a.item_id, a.home, a.route_hops, a.success) == (
            b.item_id, b.home, b.route_hops, b.success
        )
    assert sim.sink.snapshot() == reference["bill"]
    assert np.array_equal(sim.loads(), reference["loads"])
    for a, b in zip(reference["retrieve"], retrieve):
        assert a.route_hops == b.route_hops
        assert a.walk_hops == b.walk_hops
        assert a.visited == b.visited
        assert a.complete == b.complete
        assert [(d.item_id, d.score) for d in a.discoveries] == [
            (d.item_id, d.score) for d in b.discoveries
        ]


class TestShardSpec:
    def test_ranks_partition_exactly(self):
        spec = ShardSpec(4, 103, offset=0)
        ranks = np.arange(103)
        owner = spec.owner_of_ranks(ranks)
        for s in range(4):
            from_mask = set(ranks[owner == s].tolist())
            from_intervals = {
                r for a, b in spec.owned_intervals(s) for r in range(a, b)
            }
            assert from_mask == from_intervals
        # Every rank owned by exactly one shard.
        assert sorted(
            r for s in range(4) for a, b in spec.owned_intervals(s)
            for r in range(a, b)
        ) == list(range(103))

    def test_offset_wraps_rank_zero(self):
        spec = ShardSpec(4, 100, offset=37)
        # The last shard straddles rank 0: two true-rank intervals.
        wrapped = [s for s in range(4) if len(spec.owned_intervals(s)) == 2]
        assert len(wrapped) == 1
        ivs = spec.owned_intervals(wrapped[0])
        assert ivs[0][1] == 100 and ivs[1][0] == 0

    def test_interest_dilates_by_halo_clipped(self):
        spec = ShardSpec(2, 100, halo=10, offset=0)
        assert spec.interest_intervals(0) == [(0, 60)]
        assert spec.interest_intervals(1) == [(40, 100)]
        mask = spec.interest_mask(1, np.arange(100))
        assert not mask[:40].any() and mask[40:].all()

    def test_config_errors(self):
        with pytest.raises(ShardConfigError):
            ShardSpec(0, 10)
        with pytest.raises(ShardConfigError):
            ShardSpec(11, 10)
        with pytest.raises(ShardConfigError):
            ShardSpec(2, 10, halo=-1)


class TestSerialTwin:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_identical_across_shard_counts(
        self, trace, builder, workload, reference, n_shards
    ):
        with ShardedSimulator(builder, n_shards=n_shards, halo=96) as sim:
            assert_twin(sim, trace, workload, reference)

    def test_identical_with_wraparound_partition(
        self, trace, builder, workload, reference
    ):
        with ShardedSimulator(builder, n_shards=4, halo=96, offset=37) as sim:
            assert_twin(sim, trace, workload, reference)

    def test_worker_state_matches_single(self, trace, builder, reference):
        """Owned nodes hold exactly the items the single-process run
        stored on them (halo replication never leaks into ownership)."""
        single = reference["system"]
        ring = single.overlay.ring.as_array()
        with ShardedSimulator(builder, n_shards=4, halo=96) as sim:
            sim.publish_corpus(trace.corpus, np.random.default_rng(7))
            for w in sim._workers:
                for lo, hi in sim.spec.owned_intervals(w.shard_id):
                    for rank in range(lo, min(hi, lo + 4)):
                        nid = int(ring[rank])
                        a = sorted(
                            it.item_id
                            for it in single.network.node(nid).items()
                        )
                        b = sorted(
                            it.item_id
                            for it in w.system.network.node(nid).items()
                        )
                        assert a == b

    def test_merged_sink_carries_shard_instruments(
        self, trace, builder, workload
    ):
        origins, queries = workload
        with ShardedSimulator(builder, n_shards=2, halo=96) as sim:
            sim.publish_corpus(trace.corpus, np.random.default_rng(7))
            sim.retrieve_many(origins, queries, 5)
            dists = sim.sink.distributions
            timers = sim.sink.timers
        assert dists["shard.publish.items"].count == 2
        # Halo replication double-counts boundary items across shards.
        assert dists["shard.publish.items"].total >= trace.corpus.n_items
        assert dists["shard.retrieve.queries"].total == len(queries)
        assert "shard.retrieve.walk_worst" in dists
        assert timers["shard.publish"].wall.count == 2
        # Counters stay pure message bill: shard.* lives outside snapshot().
        assert not any(k.startswith("shard.") for k in sim.sink.snapshot())


class TestFailuresAndGuards:
    def test_fail_nodes_twin(self, trace, builder, workload):
        origins, queries = workload
        single = builder()
        single.publish_corpus(trace.corpus, np.random.default_rng(7), batch=True)
        victims = [int(single.overlay.ring.at(r)) for r in (10, 55, 99)]
        victims = [v for v in victims if v not in origins]
        single.network.fail_nodes(victims)
        ref = single.retrieve_many(origins, queries, 5)
        ref_bill = single.network.sink.snapshot()
        with ShardedSimulator(builder, n_shards=4) as sim:
            sim.publish_corpus(trace.corpus, np.random.default_rng(7))
            sim.fail_nodes(victims)
            got = sim.retrieve_many(origins, queries, 5)
            assert sim.sink.snapshot() == ref_bill
        for a, b in zip(ref, got):
            assert a.visited == b.visited
            assert [(d.item_id, d.score) for d in a.discoveries] == [
                (d.item_id, d.score) for d in b.discoveries
            ]

    def test_walk_guard_raises_not_diverges(self, trace, builder, workload):
        origins, queries = workload
        with ShardedSimulator(builder, n_shards=8, halo=0) as sim:
            sim.publish_corpus(trace.corpus, np.random.default_rng(7))
            with pytest.raises(ShardWalkError):
                sim.retrieve_many(origins, queries, 5)

    def test_capacity_overflow_refused(self, trace):
        cfg = MeteorographConfig(
            scheme=PlacementScheme.UNUSED_HASH, node_capacity=2
        )
        sample = trace.corpus.subsample(np.arange(100))

        def tight_builder():
            return Meteorograph.build(
                N_NODES,
                trace.corpus.dim,
                rng=np.random.default_rng(SEED),
                sample=sample,
                config=cfg,
            )

        with ShardedSimulator(tight_builder, n_shards=2) as sim:
            with pytest.raises(ShardCapacityError):
                sim.publish_corpus(trace.corpus, np.random.default_rng(7))

    def test_unshardable_config_rejected(self, trace):
        cfg = MeteorographConfig(
            scheme=PlacementScheme.UNUSED_HASH, replication_factor=2
        )
        sample = trace.corpus.subsample(np.arange(100))

        def replicated_builder():
            return Meteorograph.build(
                N_NODES,
                trace.corpus.dim,
                rng=np.random.default_rng(SEED),
                sample=sample,
                config=cfg,
            )

        with pytest.raises(ShardConfigError):
            ShardedSimulator(replicated_builder, n_shards=2)

    def test_unknown_backend_rejected(self, builder):
        with pytest.raises(ShardConfigError):
            ShardedSimulator(builder, n_shards=2, backend="threads")

    def test_unknown_retrieve_knob_rejected(self, builder, workload):
        origins, queries = workload
        with ShardedSimulator(builder, n_shards=1) as sim:
            with pytest.raises(ShardConfigError):
                sim.retrieve_many(origins, queries, 5, window=8)


class TestForkBackend:
    def test_fork_twin(self, trace, builder, workload, reference):
        with ShardedSimulator(
            builder, n_shards=2, halo=96, backend="fork"
        ) as sim:
            assert_twin(sim, trace, workload, reference)
