"""Unit tests for the physical topology / latency model."""

import numpy as np
import pytest

from repro.sim.topology import (
    EuclideanPlane,
    LatencyMap,
    TransitStubLike,
    path_latency,
)


class TestLatencyMap:
    def test_place_and_latency(self):
        m = LatencyMap()
        m.place(1, (0.0, 0.0))
        m.place(2, (3.0, 4.0))
        assert m.latency(1, 2) == pytest.approx(5.0)
        assert m.latency(2, 1) == pytest.approx(5.0)  # symmetric
        assert m.latency(1, 1) == 0.0

    def test_missing_node(self):
        m = LatencyMap()
        m.place(1, (0, 0))
        with pytest.raises(KeyError):
            m.latency(1, 99)

    def test_contains_len(self):
        m = LatencyMap()
        m.place(1, (0, 0))
        assert 1 in m and 2 not in m
        assert len(m) == 1

    def test_nearest(self):
        m = LatencyMap()
        m.place(0, (0, 0))
        m.place(1, (10, 0))
        m.place(2, (1, 0))
        m.place(3, (1, 0))  # tie with 2
        assert m.nearest(0, [1, 2]) == 2
        assert m.nearest(0, [2, 3]) == 2  # tie → smaller id
        assert m.nearest(0, []) is None


class TestEuclideanPlane:
    def test_random_placement_in_bounds(self):
        plane = EuclideanPlane(side=50.0)
        plane.place_random(list(range(100)), np.random.default_rng(0))
        for nid in range(100):
            c = plane.coordinate(nid)
            assert 0 <= c[0] <= 50 and 0 <= c[1] <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            EuclideanPlane(side=0)


class TestTransitStub:
    def test_bimodal_latencies(self):
        topo = TransitStubLike(side=100.0, n_domains=5, domain_radius=2.0)
        rng = np.random.default_rng(1)
        ids = list(range(200))
        topo.place_random(ids, rng)
        intra, inter = [], []
        for a in range(0, 200, 7):
            for b in range(1, 200, 13):
                if a == b:
                    continue
                d = topo.latency(a, b)
                if topo.domain_of[a] == topo.domain_of[b]:
                    intra.append(d)
                else:
                    inter.append(d)
        assert np.mean(intra) < np.mean(inter) / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitStubLike(n_domains=0)
        with pytest.raises(ValueError):
            TransitStubLike(side=10, domain_radius=10)


class TestPathLatency:
    def test_sums_pairwise(self):
        m = LatencyMap()
        m.place(1, (0, 0))
        m.place(2, (3, 4))
        m.place(3, (3, 0))
        assert path_latency(m, [1, 2, 3]) == pytest.approx(5.0 + 4.0)

    def test_trivial_paths(self):
        m = LatencyMap()
        m.place(1, (0, 0))
        assert path_latency(m, [1]) == 0.0
        assert path_latency(m, []) == 0.0


class TestProximityRouting:
    def test_proximity_reduces_stretch(self):
        from repro.experiments.proximity import run_proximity

        rs = run_proximity(n_nodes=200, queries=150, seed=7)
        by_mode = {row[0]: row for row in rs.rows}
        plain = by_mode["prefix-first"]
        prox = by_mode["proximity-aware"]
        assert prox[2] < plain[2]  # mean stretch improves
        assert prox[1] < plain[1] * 1.5  # hops essentially unchanged

    def test_proximity_overlay_still_routes_correctly(self):
        from repro.overlay.idspace import KeySpace
        from repro.overlay.tornado import TornadoOverlay
        from repro.sim.network import Network

        rng = np.random.default_rng(3)
        space = KeySpace(1 << 16)
        topo = EuclideanPlane()
        ids = sorted(set(int(rng.integers(0, space.modulus)) for _ in range(150)))
        topo.place_random(ids, rng)
        overlay = TornadoOverlay(space, Network(), latency_map=topo)
        for nid in ids:
            overlay.add_node(nid)
        for _ in range(50):
            key = int(rng.integers(0, space.modulus))
            origin = ids[int(rng.integers(0, len(ids)))]
            res = overlay.route(origin, key)
            assert res.home == overlay.home(key)
