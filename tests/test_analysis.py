"""Unit tests for the closed-form cost models."""

import math

import pytest

from repro.analysis import (
    availability,
    crossover_k,
    expected_route_hops,
    flood_messages,
    model_error,
    similarity_search_messages,
)


class TestRouteHops:
    def test_log_base_radix(self):
        assert expected_route_hops(256, digit_bits=2) == pytest.approx(4.0)
        assert expected_route_hops(256, digit_bits=4) == pytest.approx(2.0)

    def test_paper_constant(self):
        # The paper quotes O(log N) = 6.91 at N = 10,000 — log₄ 10⁴ ≈ 6.64.
        assert expected_route_hops(10_000, digit_bits=2) == pytest.approx(6.64, abs=0.05)

    def test_single_node(self):
        assert expected_route_hops(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_route_hops(0)


class TestSimilarityMessages:
    def test_formula(self):
        # (1 + k/c)·log N
        got = similarity_search_messages(k=100, c=50, n_nodes=256, digit_bits=2)
        assert got == pytest.approx(3.0 * 4.0)

    def test_k_zero_is_route_only(self):
        assert similarity_search_messages(0, 10, 256) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            similarity_search_messages(-1, 10, 256)
        with pytest.raises(ValueError):
            similarity_search_messages(1, 0, 256)


class TestFlood:
    def test_ideal(self):
        assert flood_messages(500) == 499

    def test_real(self):
        assert flood_messages(500, degree=4) == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            flood_messages(0)


class TestAvailability:
    def test_paper_cells(self):
        assert availability(0.5, 2) == pytest.approx(0.75)
        assert availability(0.5, 4) == pytest.approx(0.9375)
        assert availability(0.9, 8) == pytest.approx(1 - 0.9**8)

    def test_extremes(self):
        assert availability(0.0, 1) == 1.0
        assert availability(1.0, 8) == 0.0

    def test_monotone_in_replicas(self):
        vals = [availability(0.7, k) for k in (1, 2, 4, 8)]
        assert vals == sorted(vals)

    def test_validation(self):
        with pytest.raises(ValueError):
            availability(1.5, 2)
        with pytest.raises(ValueError):
            availability(0.5, 0)


class TestCrossover:
    def test_win_region_is_large(self):
        # Footnote 2: Meteorograph wins while k ≪ N·c; the crossover k
        # should be within the same order as N·c / log N.
        k = crossover_k(n_nodes=10_000, c=276)
        assert k > 100_000
        assert k == pytest.approx(276 * (9999 / math.log(10_000, 4) - 1), rel=1e-9)

    def test_single_node(self):
        assert crossover_k(1, 10) == 0.0


class TestModelError:
    def test_relative(self):
        assert model_error(11.0, 10.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            model_error(1.0, 0.0)
