"""Unit tests for the CLI."""

import os

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig7", "--scale", "0.5"])
        assert args.experiment == "fig7"
        assert args.scale == 0.5


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "finished in" in out

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "table1", "--scale", "0.02"]) == 0
        assert os.environ["REPRO_SCALE"] == "0.02"
