"""Unit tests for the CLI."""

import os

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig7", "--scale", "0.5"])
        assert args.experiment == "fig7"
        assert args.scale == 0.5


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "finished in" in out

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "table1", "--scale", "0.02"]) == 0
        assert os.environ["REPRO_SCALE"] == "0.02"


class TestObservabilityVerbs:
    def test_trace_prints_span_trees(self, capsys):
        assert main(["trace", "fig7", "--scale", "0.1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        # Nested tree: a route span with per-hop child events.
        assert "route" in out
        assert "└─" in out or "├─" in out
        assert "hop " in out or "walk " in out

    def test_stats_renders_tables_and_check_passes(self, capsys):
        assert main(["stats", "fig7", "--scale", "0.1", "--check"]) == 0
        out = capsys.readouterr().out
        assert "== counters ==" in out
        assert "net.sent.publish" in out
        assert "== timers (wall / cpu, ms) ==" in out
        assert "stats --check OK" in out

    def test_stats_out_writes_snapshot(self, capsys, tmp_path):
        out_dir = tmp_path / "obs"
        assert main(["stats", "--scale", "0.1", "--out", str(out_dir)]) == 0
        assert (out_dir / "metrics.json").exists()
        assert (out_dir / "metrics.csv").exists()

    def test_bench_writes_and_compares(self, capsys, tmp_path):
        snap = tmp_path / "BENCH_test.json"
        assert main(["bench", "--scale", "0.02", "--repeats", "1",
                     "--out", str(snap)]) == 0
        assert snap.exists()
        out = capsys.readouterr().out
        assert "tornado_route" in out
        # Comparing a run against an impossibly fast baseline must fail.
        import json

        doctored = json.loads(snap.read_text())
        for kernel in doctored["kernels"].values():
            kernel["best_us"] = 1e-6
        fast = tmp_path / "BENCH_fast.json"
        fast.write_text(json.dumps(doctored))
        assert main(["bench", "--scale", "0.02", "--repeats", "1",
                     "--against", str(fast)]) == 1
        assert "regression" in capsys.readouterr().out


class TestFaultsVerb:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenario == "poisson"
        assert args.check is None

    def test_batch_kill_smoke(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--scenario", "batch-kill",
                    "--nodes", "80",
                    "--items", "200",
                    "--queries", "40",
                    "--fraction", "0.3",
                    "--horizon", "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "availability" in out
        assert "incremental ticks" in out

    def test_check_failure_returns_nonzero(self, capsys):
        rc = main(
            [
                "faults",
                "--scenario", "batch-kill",
                "--nodes", "60",
                "--items", "150",
                "--queries", "30",
                "--fraction", "0.9",
                "--no-retry",
                "--full-scan",
                "--check", "1.01",  # unsatisfiable threshold
            ]
        )
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err


class TestChaosVerb:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.drop == 0.05
        assert args.min_avail == 0.85
        assert not args.check

    def test_smoke_with_check(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--nodes", "80",
                    "--items", "300",
                    "--queries", "60",
                    "--horizon", "15",
                    "--quiesce", "10",
                    "--seed", "3",
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "invariant reachability: ok" in out
        assert "invariant accounting: ok" in out
        assert "chaos --check OK" in out

    def test_check_failure_returns_nonzero(self, capsys):
        rc = main(
            [
                "chaos",
                "--nodes", "60",
                "--items", "150",
                "--queries", "30",
                "--horizon", "10",
                "--quiesce", "5",
                "--check",
                "--min-avail", "1.01",  # unsatisfiable threshold
            ]
        )
        assert rc == 1
        assert "chaos --check FAILED" in capsys.readouterr().err

    def test_new_scenarios_reachable_from_faults_verb(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--scenario", "partition",
                    "--nodes", "60",
                    "--items", "150",
                    "--queries", "30",
                    "--horizon", "10",
                ]
            )
            == 0
        )
        assert "availability" in capsys.readouterr().out


class TestOverloadVerb:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["overload"])
        assert args.nodes == 400
        assert args.skew == 1.2
        assert args.service_rate is None
        assert not args.check

    def test_storm_smoke(self, capsys):
        assert (
            main(
                [
                    "overload",
                    "--nodes", "120",
                    "--items", "2000",
                    "--queries", "30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "max inbox depth" in out
        assert "shed rate" in out

    def test_check_pass_and_fail(self, capsys):
        base = [
            "overload",
            "--nodes", "120",
            "--items", "2000",
            "--queries", "30",
            "--check",
        ]
        assert main(base + ["--max-shed", "1.0", "--min-avail", "0.0"]) == 0
        assert "overload --check OK" in capsys.readouterr().out
        rc = main(base + ["--min-avail", "1.01"])  # unsatisfiable threshold
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err


class TestBuildVerb:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["build"])
        assert args.items == 4000
        assert args.chunk_rows == 512
        assert not args.check

    def test_build_smoke_and_check(self, capsys):
        base = [
            "build",
            "--items", "600",
            "--nodes", "80",
            "--chunk-rows", "97",
        ]
        assert main(base + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical: True" in out
        assert "placements True" in out
        assert "build --check OK" in out

    def test_check_failure_returns_nonzero(self, capsys):
        rc = main(
            [
                "build",
                "--items", "600",
                "--nodes", "80",
                "--check",
                "--min-speedup", "1000",  # unsatisfiable threshold
            ]
        )
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err
