"""Smoke tests: every example script runs clean end to end.

Examples are the adoption surface; a broken one is a broken deliverable.
Each runs in a subprocess with the repo's interpreter, bounded in time.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "digital_library.py",
        "resource_discovery.py",
        "compare_baselines.py",
        "extensions_tour.py",
        "text_search.py",
    } <= names
