"""Cross-module integration tests: the full pipeline, end to end.

These exercise the same flows the paper's evaluation runs, at small
scale, asserting *global invariants* rather than per-module behaviour:
conservation of items, recall against ground truth, scheme-independent
correctness, and determinism of a complete experiment.
"""

import numpy as np
import pytest

from repro.core import PlacementScheme
from repro.workload import (
    keyword_ground_truth,
    keyword_query,
    multi_keyword_query,
    nth_popular_keyword,
)


@pytest.fixture(autouse=True)
def _bind_builder(build_system_fn):
    globals()["build_small_system"] = build_system_fn


ALL_SCHEMES = (
    PlacementScheme.NONE,
    PlacementScheme.UNUSED_HASH,
    PlacementScheme.UNUSED_HASH_HOT,
)


class TestEveryScheme:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
    def test_publish_find_roundtrip(self, tiny_trace, rng, scheme):
        system = build_small_system(tiny_trace, n_nodes=60, scheme=scheme)
        system.publish_corpus(tiny_trace.corpus, rng)
        misses = [
            i
            for i in range(tiny_trace.corpus.n_items)
            if not system.find(system.random_origin(rng), i).found
        ]
        assert misses == []

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
    def test_items_conserved(self, tiny_trace, rng, scheme):
        system = build_small_system(tiny_trace, n_nodes=60, scheme=scheme)
        system.publish_corpus(tiny_trace.corpus, rng)
        assert system.network.total_items() == tiny_trace.corpus.n_items


class TestCapacityPressure:
    def test_displacement_conserves_items_under_8c(self, tiny_trace, rng):
        n_nodes = 40
        cap = max(1, int(8 * tiny_trace.corpus.n_items / n_nodes))
        system = build_small_system(
            tiny_trace, n_nodes=n_nodes, node_capacity=cap
        )
        results = system.publish_corpus(tiny_trace.corpus, rng)
        dropped = sum(1 for r in results if not r.success)
        assert system.network.total_items() == tiny_trace.corpus.n_items - dropped
        assert dropped == 0  # total capacity is 8× the corpus

    def test_no_node_exceeds_capacity(self, tiny_trace, rng):
        system = build_small_system(tiny_trace, n_nodes=40, node_capacity=30)
        system.publish_corpus(tiny_trace.corpus, rng)
        for node in system.network.nodes():
            assert len(node) <= 30


class TestSimilaritySearchRecall:
    def test_keyword_recall_with_walk(self, small_trace, populated_system, rng):
        kw = nth_popular_keyword(small_trace.corpus, 5, max_matches=100)
        gt = keyword_ground_truth(small_trace.corpus, [kw])
        assert gt.total > 0
        q = keyword_query(small_trace, [kw])
        res = populated_system.retrieve(
            populated_system.random_origin(rng), q, None,
            require_all=[kw], use_first_hop=True, patience=50,
        )
        assert res.found >= 0.9 * gt.total
        assert set(res.item_ids()) <= set(int(i) for i in gt.matching_items)

    def test_multi_keyword_finds_source_item(self, small_trace, populated_system, rng):
        q, src = multi_keyword_query(small_trace, rng, n_keywords=4)
        res = populated_system.retrieve(
            populated_system.random_origin(rng), q, None,
            require_all=[int(i) for i in q.indices],
            use_first_hop=True, patience=50,
        )
        assert src in res.item_ids()

    def test_discovered_items_actually_match(self, small_trace, populated_system, rng):
        kw = nth_popular_keyword(small_trace.corpus, 3, max_matches=100)
        q = keyword_query(small_trace, [kw])
        res = populated_system.retrieve(
            populated_system.random_origin(rng), q, None,
            require_all=[kw], use_first_hop=True, patience=50,
        )
        for item_id in res.item_ids():
            assert small_trace.corpus.vector(item_id).contains_all([kw])


class TestPointersEquivalence:
    def test_pointer_and_walk_find_same_items(self, tiny_trace, rng):
        kw = nth_popular_keyword(tiny_trace.corpus, 2, max_matches=60)
        gt = keyword_ground_truth(tiny_trace.corpus, [kw])
        q = keyword_query(tiny_trace, [kw])

        walk_sys = build_small_system(tiny_trace, n_nodes=60, seed=8)
        ptr_sys = build_small_system(
            tiny_trace, n_nodes=60, seed=8, directory_pointers=True
        )
        walk_sys.publish_corpus(tiny_trace.corpus, np.random.default_rng(3))
        ptr_sys.publish_corpus(tiny_trace.corpus, np.random.default_rng(3))

        walk = walk_sys.retrieve(
            walk_sys.random_origin(rng), q, None, require_all=[kw],
            use_first_hop=True, patience=60,
        )
        ptr = ptr_sys.retrieve(
            ptr_sys.random_origin(rng), q, None, require_all=[kw],
            use_first_hop=True, patience=60,
        )
        truth = set(int(i) for i in gt.matching_items)
        assert set(walk.item_ids()) <= truth
        assert set(ptr.item_ids()) <= truth
        assert len(ptr.item_ids()) >= 0.9 * gt.total


class TestFailureFailover:
    def test_replicated_items_survive_failures(self, tiny_trace, rng):
        system = build_small_system(
            tiny_trace, n_nodes=80, replication_factor=4
        )
        system.publish_corpus(tiny_trace.corpus, rng)
        from repro.sim.failures import fail_fraction

        fail_fraction(system.network, 0.4, rng)
        system.overlay.stabilize()
        found = 0
        trials = 60
        for i in range(trials):
            item = int(rng.integers(0, tiny_trace.corpus.n_items))
            if system.find(system.random_origin(rng), item, max_walk=10).found:
                found += 1
        # 1 − 0.4⁴ ≈ 0.974; leave slack for routing imperfection.
        assert found / trials > 0.85


class TestDeterminism:
    def test_full_pipeline_reproducible(self, tiny_trace):
        def run():
            system = build_small_system(tiny_trace, n_nodes=50, seed=21)
            rng = np.random.default_rng(5)
            system.publish_corpus(tiny_trace.corpus, rng)
            res = system.find(system.random_origin(rng), 7)
            return (
                list(system.overlay.ring),
                system.network.sink.snapshot(),
                res.total_hops,
            )

        assert run() == run()


class TestChordPortability:
    def test_full_pipeline_on_chord(self, tiny_trace, rng):
        system = build_small_system(
            tiny_trace, n_nodes=60, overlay_kind="chord"
        )
        system.publish_corpus(tiny_trace.corpus, rng)
        assert system.network.total_items() == tiny_trace.corpus.n_items
        for i in range(0, tiny_trace.corpus.n_items, 37):
            assert system.find(system.random_origin(rng), i).found
