"""Unit tests for result persistence."""

import json

import pytest

from repro.experiments.common import RowSet
from repro.io import read_rowset_csv, update_manifest, write_manifest, write_rowset


def sample_rowset():
    rs = RowSet("Figure X — demo", ("n", "hops"))
    rs.add(100, 3.5)
    rs.add(200, 4.0)
    rs.notes["scheme"] = "hot"
    rs.elapsed_s = 1.25
    return rs


class TestWriteRowset:
    def test_csv_round_trip(self, tmp_path):
        csv_path, _ = write_rowset(sample_rowset(), tmp_path, "figX")
        headers, rows = read_rowset_csv(csv_path)
        assert headers == ("n", "hops")
        assert rows == [("100", "3.5"), ("200", "4.0")]

    def test_json_payload(self, tmp_path):
        _, json_path = write_rowset(sample_rowset(), tmp_path, "figX")
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "Figure X — demo"
        assert payload["rows"] == [[100, 3.5], [200, 4.0]]
        assert payload["notes"] == {"scheme": "hot"}
        assert payload["elapsed_s"] == 1.25

    def test_slug_sanitised(self, tmp_path):
        csv_path, _ = write_rowset(sample_rowset(), tmp_path, "Fig 10(a)!")
        assert csv_path.name == "fig-10-a.csv"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_rowset(sample_rowset(), target, "x")
        assert (target / "x.csv").exists()

    def test_non_jsonable_notes_stringified(self, tmp_path):
        rs = sample_rowset()
        rs.notes["weird"] = {1, 2}
        _, json_path = write_rowset(rs, tmp_path, "figY")
        payload = json.loads(json_path.read_text())
        assert isinstance(payload["notes"]["weird"], str)


class TestManifest:
    def test_manifest_indexes_entries(self, tmp_path):
        entries = {"figX": sample_rowset(), "figY": sample_rowset()}
        for name, rs in entries.items():
            write_rowset(rs, tmp_path, name)
        path = write_manifest(tmp_path, entries)
        manifest = json.loads(path.read_text())
        assert set(manifest) == {"figX", "figY"}
        assert manifest["figX"]["csv"] == "figx.csv"
        assert manifest["figX"]["rows"] == 2

    def test_update_keeps_earlier_entries(self, tmp_path):
        write_manifest(tmp_path, {"figX": sample_rowset()})
        path = update_manifest(tmp_path, {"figY": sample_rowset()})
        manifest = json.loads(path.read_text())
        assert set(manifest) == {"figX", "figY"}

    def test_update_replaces_rerun_ids(self, tmp_path):
        update_manifest(tmp_path, {"figX": sample_rowset()})
        rerun = sample_rowset()
        rerun.add(300, 5.0)
        path = update_manifest(tmp_path, {"figX": rerun})
        manifest = json.loads(path.read_text())
        assert manifest["figX"]["rows"] == 3

    def test_update_survives_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        path = update_manifest(tmp_path, {"figX": sample_rowset()})
        assert set(json.loads(path.read_text())) == {"figX"}


class TestReadErrors:
    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError):
            read_rowset_csv(p)


class TestCliOut:
    def test_run_with_out_writes_files(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "manifest.json").exists()
        assert "results written" in capsys.readouterr().out


class TestWriteSpans:
    def _bus(self):
        from repro.obs.trace import TraceBus

        bus = TraceBus(clock=lambda: 0.0)
        with bus.span("publish", item=3):
            bus.event("hop", src=1, dst=2)
        return bus

    def test_span_export_round_trips(self, tmp_path):
        from repro.io import write_spans

        path = write_spans(self._bus(), tmp_path, "fig7")
        assert path.name == "fig7.spans.json"
        payload = json.loads(path.read_text())
        assert payload["roots"] == 1
        root = payload["spans"][0]
        assert root["kind"] == "publish"
        assert root["attrs"] == {"item": 3}
        assert root["children"][0]["kind"] == "hop"

    def test_null_tracer_exports_empty(self, tmp_path):
        from repro.io import write_spans
        from repro.obs.trace import NULL_TRACER

        payload = json.loads(write_spans(NULL_TRACER, tmp_path).read_text())
        assert payload == {"roots": 0, "spans": []}

    def test_trace_cli_out_writes_spans(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.spans.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["roots"] > 0
