"""Cross-cutting property-based tests (hypothesis) on system invariants.

These complement the per-module property tests: each one states an
invariant of the *composed* system — routing correctness under
arbitrary membership and failures, conservation under displacement,
order preservation through the naming pipeline — and lets hypothesis
hunt for counterexamples.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.meteorograph import Meteorograph, MeteorographConfig, PlacementScheme
from repro.core.naming import CdfEqualizer, Knee
from repro.core.publish import run_displacement_chain
from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import KeySpace
from repro.overlay.tornado import TornadoOverlay
from repro.sim.network import Network
from repro.sim.node import StoredItem

SPACE = KeySpace(1 << 14)

node_sets = st.sets(
    st.integers(0, SPACE.modulus - 1), min_size=2, max_size=40
)
keys = st.integers(0, SPACE.modulus - 1)


def build_tornado(members):
    overlay = TornadoOverlay(SPACE, Network())
    for nid in sorted(members):
        overlay.add_node(nid)
    return overlay


def build_chord(members):
    overlay = ChordOverlay(SPACE, Network())
    for nid in sorted(members):
        overlay.add_node(nid)
    return overlay


class TestRoutingInvariants:
    @given(members=node_sets, key=keys, origin_seed=st.integers(0, 10**6))
    @settings(max_examples=150, deadline=None)
    def test_tornado_route_reaches_ring_closest(self, members, key, origin_seed):
        overlay = build_tornado(members)
        origin = sorted(members)[origin_seed % len(members)]
        res = overlay.route(origin, key)
        assert res.home == overlay.ring.closest(key)
        assert res.path[0] == origin
        assert res.path[-1] == res.home
        # No revisits: strict-descent routing cannot loop.
        assert len(res.path) == len(set(res.path))

    @given(members=node_sets, key=keys, origin_seed=st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_chord_route_reaches_successor(self, members, key, origin_seed):
        overlay = build_chord(members)
        origin = sorted(members)[origin_seed % len(members)]
        res = overlay.route(origin, key)
        assert res.home == overlay.ring.successor(key)

    @given(
        members=st.sets(st.integers(0, SPACE.modulus - 1), min_size=4, max_size=40),
        key=keys,
        kill_seed=st.integers(0, 10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_stabilized_route_reaches_live_home(self, members, key, kill_seed):
        overlay = build_tornado(members)
        ordered = sorted(members)
        rng = np.random.default_rng(kill_seed)
        kill = rng.choice(len(ordered), size=len(ordered) // 2, replace=False)
        for i in kill:
            overlay.node(ordered[i]).fail()
        overlay.stabilize()
        live = [n for n in ordered if overlay.network.is_alive(n)]
        if not live:
            return
        res = overlay.route(live[0], key)
        assert res.home == overlay.live_home(key)
        for hop in res.path:
            assert overlay.network.is_alive(hop)


class TestDisplacementInvariants:
    @given(
        capacity=st.integers(1, 4),
        item_keys=st.lists(keys, min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_capacity(self, capacity, item_keys):
        members = list(range(0, SPACE.modulus, SPACE.modulus // 12))[:12]
        network = Network()
        overlay = TornadoOverlay(SPACE, network)
        system = Meteorograph(
            space=SPACE,
            network=network,
            overlay=overlay,
            dim=8,
            config=MeteorographConfig(
                scheme=PlacementScheme.NONE, node_capacity=capacity
            ),
            equalizer=None,
        )
        for nid in members:
            overlay.add_node(nid, capacity=capacity)
        dropped = 0
        for i, k in enumerate(item_keys):
            item = StoredItem(i, k, k, np.array([1]), np.array([1.0]))
            home = overlay.home(k)
            res = run_displacement_chain(system, home, item)
            dropped += 0 if res.success else 1
        # Conservation: stored + dropped == published.
        assert network.total_items() + dropped == len(item_keys)
        # Capacity: never exceeded anywhere.
        for node in network.nodes():
            assert len(node) <= capacity
        # Drops only happen when the whole overlay is full.
        if dropped:
            assert network.total_items() == capacity * len(members)

    @given(item_keys=st.lists(keys, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_each_item_stored_exactly_once(self, item_keys):
        members = list(range(0, SPACE.modulus, SPACE.modulus // 10))[:10]
        network = Network()
        overlay = TornadoOverlay(SPACE, network)
        system = Meteorograph(
            space=SPACE, network=network, overlay=overlay, dim=8,
            config=MeteorographConfig(scheme=PlacementScheme.NONE, node_capacity=2),
            equalizer=None,
        )
        for nid in members:
            overlay.add_node(nid, capacity=2)
        for i, k in enumerate(item_keys):
            item = StoredItem(i, k, k, np.array([1]), np.array([1.0]))
            run_displacement_chain(system, overlay.home(k), item)
        holders: dict[int, int] = {}
        for node in network.nodes():
            for item in node.items():
                holders[item.item_id] = holders.get(item.item_id, 0) + 1
        assert all(count == 1 for count in holders.values())


class TestNamingPipelineInvariants:
    @st.composite
    def equalizers(draw):
        n = draw(st.integers(0, 5))
        interior = sorted(
            draw(
                st.lists(
                    st.tuples(
                        st.floats(0.01, 0.99), st.integers(1, SPACE.modulus - 1)
                    ),
                    min_size=n,
                    max_size=n,
                    unique_by=lambda t: t[1],
                )
            ),
            key=lambda t: t[1],
        )
        a_vals = sorted(t[0] for t in interior)
        knees = [Knee(0.0, 0)]
        for a, (_, b) in zip(a_vals, interior):
            knees.append(Knee(a, b))
        knees.append(Knee(1.0, SPACE.modulus))
        return CdfEqualizer(knees, SPACE)

    @given(eq=equalizers(), ks=st.lists(keys, min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_equalizer_monotone_for_random_knees(self, eq, ks):
        ks = sorted(ks)
        out = [eq.remap(k) for k in ks]
        assert out == sorted(out)
        batch = eq.remap_many(np.array(ks))
        assert list(batch) == out

    @given(
        weights=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=8),
        bump=st.floats(1e-6, 1e-4),
        idx=st.integers(0, 7),
    )
    @settings(max_examples=100, deadline=None)
    def test_absolute_angle_is_lipschitz_in_weights(self, weights, bump, idx):
        """Tiny weight perturbations move θ only a tiny amount — the
        continuity that makes 'similar items get nearby keys' true."""
        from repro.core.angles import absolute_angle_from_arrays

        arr = np.array(weights)
        theta = absolute_angle_from_arrays(arr, 64)
        arr2 = arr.copy()
        arr2[idx % arr.size] *= 1.0 + bump
        theta2 = absolute_angle_from_arrays(arr2, 64)
        assert abs(theta - theta2) < 1e-2
