"""Unit tests for the Freenet DFS baseline."""

import numpy as np
import pytest

from repro.overlay.idspace import KeySpace
from repro.unstructured.freenet import FreenetOverlay

SPACE = KeySpace(10_000)


def make(n=40, seed=0, **kwargs):
    return FreenetOverlay(n, SPACE, rng=np.random.default_rng(seed), **kwargs)


class TestStore:
    def test_store_and_has(self):
        ov = make()
        ov.store(3, key=100, item_id=7)
        assert ov.has_key(3, 100)
        assert not ov.has_key(3, 101)
        assert not ov.has_key(4, 100)

    def test_cache_eviction_fifo(self):
        ov = make(cache_size=2)
        ov.store(1, 10, 0)
        ov.store(1, 20, 1)
        ov.store(1, 30, 2)
        assert not ov.has_key(1, 10)
        assert ov.has_key(1, 20) and ov.has_key(1, 30)


class TestSearch:
    def test_finds_stored_key(self):
        ov = make()
        ov.store(25, key=500, item_id=1)
        res = ov.search(0, 500, ttl=40)
        assert res.found
        assert res.holder == 25
        assert res.messages > 0

    def test_origin_holding_key_is_free(self):
        ov = make()
        ov.store(0, key=500, item_id=1)
        res = ov.search(0, 500)
        assert res.found and res.messages == 0

    def test_ttl_bounds_search(self):
        ov = make(80, seed=3)
        ov.store(79, key=123, item_id=1)
        res = ov.search(0, 123, ttl=1)
        # With ttl=1, only direct neighbors reachable — likely a miss.
        assert res.depth_reached <= 1

    def test_missing_key_not_found(self):
        ov = make()
        res = ov.search(0, 999, ttl=10)
        assert not res.found
        assert res.holder is None

    def test_ttl_validated(self):
        with pytest.raises(ValueError):
            make().search(0, 1, ttl=0)

    def test_caching_on_success_path(self):
        ov = make(seed=5)
        ov.store(30, key=700, item_id=2)
        first = ov.search(0, 700, ttl=40)
        assert first.found
        if len(first.path) > 1:
            # Path nodes now cache the key.
            assert ov.has_key(first.path[0], 700)
            second = ov.search(first.path[0], 700, ttl=40)
            assert second.messages == 0

    def test_caching_disabled(self):
        ov = make(seed=6)
        ov.store(30, key=700, item_id=2)
        res = ov.search(0, 700, ttl=40, cache_on_return=False)
        if res.found and len(res.path) > 1:
            assert not ov.has_key(res.path[0], 700)

    def test_specialization_drifts_toward_served_keys(self):
        ov = make(seed=7)
        ov.store(30, key=700, item_id=2)
        before = dict(ov.specialization)
        res = ov.search(0, 700, ttl=40)
        if res.found and len(res.path) > 1:
            moved = [n for n in res.path[:-1] if ov.specialization[n] != before[n]]
            assert moved
            for n in moved:
                assert SPACE.ring_distance(ov.specialization[n], 700) <= SPACE.ring_distance(before[n], 700)

    def test_messages_charged_to_sink(self):
        ov = make(seed=8)
        ov.store(20, key=300, item_id=1)
        before = ov.sink.count("dfs")
        res = ov.search(0, 300, ttl=30)
        assert ov.sink.count("dfs") - before == res.messages


class TestFloodEvent:
    def test_search_emits_reserved_event_and_counters(self):
        from repro.obs import Observability

        obs = Observability()
        ov = FreenetOverlay(
            30, SPACE, rng=np.random.default_rng(1), obs=obs
        )
        ov.store(25, key=500, item_id=1)
        result = ov.search(0, 500, ttl=40)
        events = obs.tracer.find("flood")
        assert len(events) == 1
        assert events[0].attrs["mode"] == "dfs"
        assert events[0].attrs["messages"] == result.messages
        assert events[0].attrs["found"] == int(result.found)
        assert obs.metrics.counters["flood.searches"] == 1
        assert obs.metrics.counters["flood.messages"] == result.messages
