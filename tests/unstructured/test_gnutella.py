"""Unit tests for the Gnutella flooding baseline."""

import numpy as np
import pytest

from repro.unstructured.gnutella import GnutellaOverlay


def make(n=50, seed=0, degree=4):
    return GnutellaOverlay(n, degree=degree, rng=np.random.default_rng(seed))


class TestConstruction:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GnutellaOverlay(1, rng=rng)
        with pytest.raises(ValueError):
            GnutellaOverlay(10, degree=1, rng=rng)
        with pytest.raises(ValueError):
            GnutellaOverlay(10, degree=10, rng=rng)

    def test_odd_degree_sum_bumped(self):
        ov = GnutellaOverlay(5, degree=3, rng=np.random.default_rng(0))
        assert ov.degree == 4  # 5*3 odd → bumped

    def test_regular_topology(self):
        ov = make(20, degree=4)
        assert all(d == 4 for _, d in ov.graph.degree())


class TestPublish:
    def test_local_matches(self):
        ov = make()
        ov.publish(3, 1, [10, 20])
        ov.publish(3, 2, [10])
        assert ov.local_matches(3, [10]) == [1, 2]
        assert ov.local_matches(3, [10, 20]) == [1]
        assert ov.local_matches(3, [30]) == []
        assert ov.local_matches(4, [10]) == []

    def test_publish_randomly_scatters(self):
        ov = make(50)
        baskets = [np.array([1]) for _ in range(200)]
        ov.publish_randomly(list(range(200)), baskets, np.random.default_rng(1))
        assert ov.total_items() == 200
        non_empty = sum(1 for n in range(50) if ov.local_matches(n, [1]))
        assert non_empty > 25  # spread over many nodes


class TestFlood:
    def build_published(self):
        ov = make(60, seed=2)
        baskets = [np.array([7]) if i % 3 == 0 else np.array([9]) for i in range(90)]
        ov.publish_randomly(list(range(90)), baskets, np.random.default_rng(3))
        return ov

    def test_unbounded_flood_finds_everything(self):
        ov = self.build_published()
        res = ov.flood(0, [7])
        assert len(res.found) == 30
        assert res.nodes_reached == 60

    def test_unbounded_flood_costs_about_n_times_degree(self):
        ov = self.build_published()
        res = ov.flood(0, [7])
        # Every node sends to every neighbor: N·d messages total.
        assert res.messages == 60 * 4

    def test_ttl_limits_scope(self):
        ov = self.build_published()
        res = ov.flood(0, [7], ttl=2)
        assert res.nodes_reached <= 1 + 4 + 4 * 3
        assert res.messages < 60 * 4

    def test_ttl_can_miss_existing_items(self):
        ov = self.build_published()
        full = ov.flood(0, [7])
        limited = ov.flood(0, [7], ttl=1)
        assert len(limited.found) < len(full.found)

    def test_results_depend_on_origin(self):
        # Non-determinism across issuers: TTL-limited floods from
        # different origins see different subsets (§1's complaint).
        ov = self.build_published()
        a = {i for i, _ in ov.flood(0, [7], ttl=2).found}
        b = {i for i, _ in ov.flood(30, [7], ttl=2).found}
        assert a != b

    def test_stop_after_early_exit(self):
        ov = self.build_published()
        res = ov.flood(0, [7], stop_after=5)
        assert len(res.found) >= 5
        assert res.messages < ov.flood(0, [7]).messages

    def test_unknown_origin(self):
        with pytest.raises(KeyError):
            make().flood(999, [1])

    def test_sink_charged(self):
        ov = self.build_published()
        before = ov.sink.count("flood")
        res = ov.flood(0, [7])
        assert ov.sink.count("flood") - before == res.messages

    def test_flood_for_vector(self):
        from repro.vsm.sparse import SparseVector

        ov = self.build_published()
        q = SparseVector.from_mapping({7: 1.0}, 100)
        res = ov.flood_for_vector(0, q)
        assert len(res.found) == 30


class TestFloodEvent:
    def test_flood_emits_reserved_event_and_counters(self):
        from repro.obs import Observability

        obs = Observability()
        ov = GnutellaOverlay(30, rng=np.random.default_rng(1), obs=obs)
        ov.publish(5, 1, [10])
        result = ov.flood(0, [10])
        events = obs.tracer.find("flood")
        assert len(events) == 1
        assert events[0].attrs["mode"] == "bfs"
        assert events[0].attrs["messages"] == result.messages
        assert events[0].attrs["reached"] == result.nodes_reached
        assert obs.metrics.counters["flood.searches"] == 1
        assert obs.metrics.counters["flood.messages"] == result.messages

    def test_no_obs_no_emission(self):
        ov = make()
        ov.flood(0, [10])
        assert ov.obs.enabled is False
