"""Unit tests for the per-keyword sub-overlay baseline (§1)."""

import numpy as np
import pytest

from repro.overlay.idspace import KeySpace
from repro.unstructured.suboverlays import SubOverlayDirectory

SPACE = KeySpace(10_000)


def make(n=30, seed=0):
    return SubOverlayDirectory(n, SPACE, rng=np.random.default_rng(seed))


class TestPublish:
    def test_copies_equal_keyword_count(self):
        d = make()
        rng = np.random.default_rng(1)
        assert d.publish(1, [10, 20, 30], rng) == 3
        assert d.copies_stored() == 3

    def test_duplicate_keywords_deduped(self):
        d = make()
        assert d.publish(1, [10, 10, 20], np.random.default_rng(1)) == 2

    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError):
            make().publish(1, [], np.random.default_rng(1))

    def test_duplication_grows_with_basket_size(self):
        d = make()
        rng = np.random.default_rng(2)
        for i in range(10):
            d.publish(i, list(range(5)), rng)
        assert d.copies_stored() == 50  # 10 items × 5 keywords
        assert d.sub_overlay_count() == 5


class TestQuery:
    def build(self):
        d = make()
        rng = np.random.default_rng(3)
        d.publish(1, [10, 20], rng)
        d.publish(2, [10], rng)
        d.publish(3, [20, 30], rng)
        return d

    def test_conjunction_correct(self):
        res = self.build().query([10, 20])
        assert res.matches == [1]

    def test_transfer_waste_counted(self):
        res = self.build().query([10, 20])
        # keyword 10 ships items {1,2}, keyword 20 ships {1,3} → 4 transfers,
        # only 1 final match → 3 wasted.
        assert res.items_transferred == 4
        assert res.transfer_waste == 3

    def test_messages_include_routing(self):
        res = self.build().query([10, 20])
        assert res.messages == res.route_messages + res.items_transferred
        assert res.route_messages >= 2

    def test_unknown_keyword_empty(self):
        res = self.build().query([99])
        assert res.matches == []
        assert res.items_transferred == 0

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            self.build().query([])


class TestMaintenance:
    def test_maintenance_load_counts_memberships(self):
        d = make(n=5, seed=4)
        rng = np.random.default_rng(5)
        for i in range(20):
            d.publish(i, [i % 7], rng)
        load = d.maintenance_load()
        assert sum(load.values()) == sum(
            len(d._members[k]) for k in d._members
        )
        assert max(load.values()) >= 1
