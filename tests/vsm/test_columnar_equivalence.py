"""Columnar-store equivalence: the SoA index vs a dict-based oracle.

The columnar re-platform (DESIGN.md, "Columnar node state") changed the
*representation* of per-node state, not its semantics.  These tests pin
that claim:

* randomized add / remove / re-add / query interleavings must match a
  plain dict oracle on rankings, ladder extremes and ``snapshot()``
  contents — across scalar ops, bulk ops, and the tombstone-compaction
  cycles the interleavings trigger;
* ``least_similar`` (the COSINE replacement-victim rule) must agree with
  the victim derived from the batch ``score_many`` matrix — scalar and
  batch paths run one kernel, so the pick is identical, not just close;
* regression: a query that raises mid-kernel must not leave the shared
  dense scratch dirty (every later score on the node would be wrong);
* regression: ``NodeState.remove_many`` with duplicate ids must remove
  each id once instead of raising ``KeyError`` mid-sweep, and an unknown
  id must fail *before* any mutation.
"""

import math

import numpy as np
import pytest

from repro.core.meteorograph import NodeState
from repro.sim.node import StoredItem
from repro.vsm.index import LocalVsmIndex
from repro.vsm.sparse import SparseVector

DIM = 24


def make_item(item_id, mapping, angle_key=0):
    ids = np.array(sorted(mapping), dtype=np.int64)
    w = np.array([mapping[i] for i in ids], dtype=np.float64)
    return StoredItem(item_id, angle_key, angle_key, ids, w)


def rand_item(rng, item_id):
    k = int(rng.integers(1, 6))
    kws = rng.choice(DIM, size=k, replace=False).tolist()
    ws = rng.uniform(0.2, 2.0, size=k)
    return make_item(
        item_id, dict(zip(kws, ws)), angle_key=int(rng.integers(0, 1 << 20))
    )


def rand_query(rng):
    k = int(rng.integers(1, 5))
    kws = rng.choice(DIM, size=k, replace=False).tolist()
    return SparseVector.from_mapping(
        dict(zip(kws, rng.uniform(0.2, 2.0, size=k))), DIM
    )


def oracle_ranking(items, q):
    """Brute-force (id, score) ranking over a dict oracle."""
    scored = []
    for it in items.values():
        v = SparseVector(it.keyword_ids, it.weights, DIM)
        s = v.cosine(q)
        if s > 0.0:
            scored.append((it.item_id, s))
    scored.sort(key=lambda t: (-t[1], t[0]))
    return scored


def assert_rankings_match(got, expect):
    assert [i for i, _ in got] == [i for i, _ in expect]
    for (_, gs), (_, es) in zip(got, expect):
        assert gs == pytest.approx(es, rel=1e-12, abs=1e-15)


class TestRandomizedOracle:
    """Random interleavings of scalar/bulk mutations vs the dict oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_interleaved_mutations_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        state = NodeState(DIM)
        oracle: dict[int, StoredItem] = {}
        next_id = 0
        for step in range(120):
            op = rng.random()
            if op < 0.35 or not oracle:
                it = rand_item(rng, next_id)
                next_id += 1
                state.add(it)
                oracle[it.item_id] = it
            elif op < 0.50:
                # Bulk add with an intra-batch duplicate id now and then.
                n = int(rng.integers(2, 8))
                batch = [rand_item(rng, next_id + j) for j in range(n)]
                next_id += n
                if n >= 3 and rng.random() < 0.5:
                    dup = rand_item(rng, batch[0].item_id)
                    batch.append(dup)
                state.add_many(batch)
                for it in batch:
                    oracle[it.item_id] = it
            elif op < 0.65:
                # Re-add an existing id with fresh content.
                iid = int(rng.choice(sorted(oracle)))
                it = rand_item(rng, iid)
                state.add(it)
                oracle[iid] = it
            elif op < 0.80:
                iid = int(rng.choice(sorted(oracle)))
                removed = state.remove(iid)
                assert removed is oracle.pop(iid)
            else:
                n = min(len(oracle), int(rng.integers(1, 6)))
                ids = rng.choice(sorted(oracle), size=n, replace=False).tolist()
                state.remove_many([int(i) for i in ids])
                for iid in ids:
                    del oracle[int(iid)]

            if step % 10 == 9:
                self.check_state(state, oracle, rng)
        self.check_state(state, oracle, rng)

    def check_state(self, state, oracle, rng):
        index = state.index
        assert len(index) == len(oracle)
        # Rankings (scalar query + batch query_many share one kernel).
        queries = [rand_query(rng) for _ in range(3)]
        batch = index.query_many(queries)
        for q, hits in zip(queries, batch):
            got = [(h.item.item_id, h.score) for h in hits]
            assert_rankings_match(got, oracle_ranking(oracle, q))
            scalar = [(h.item.item_id, h.score) for h in index.query(q)]
            assert scalar == got
        # Ladder extremes and snapshot contents.
        ladder, items = state.snapshot()
        assert items == oracle
        expect_ladder = sorted((it.angle_key, iid) for iid, it in oracle.items())
        assert ladder == expect_ladder
        if oracle:
            assert state.min_angle_item() is oracle[expect_ladder[0][1]]
            assert state.max_angle_item() is oracle[expect_ladder[-1][1]]
        else:
            assert state.min_angle_item() is None
            assert state.max_angle_item() is None

    def test_compaction_preserves_contents(self):
        rng = np.random.default_rng(42)
        state = NodeState(DIM)
        items = [rand_item(rng, i) for i in range(120)]
        state.add_many(items)
        survivors = {it.item_id: it for it in items if it.item_id % 5 == 0}
        state.remove_many([it.item_id for it in items if it.item_id % 5])
        # 96 tombstones against 24 live rows — compaction must have run.
        assert state.index._rows == len(survivors)  # noqa: SLF001
        self.check_state(state, survivors, rng)


class TestVictimKernelAgreement:
    """least_similar (scalar) vs the score_many matrix (batch): the
    COSINE replacement rule must pick the same victim bit-for-bit."""

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_scalar_and_batch_agree(self, seed):
        rng = np.random.default_rng(seed)
        idx = LocalVsmIndex(DIM)
        for i in range(60):
            idx.add(rand_item(rng, i))
        queries = [rand_query(rng) for _ in range(20)]
        ids, scores = idx.score_many(queries)
        for q, row in zip(queries, scores):
            victim = idx.least_similar(q)
            batch_pick = int(ids[np.lexsort((ids, row))[0]])
            assert victim.item_id == batch_pick

    def test_agreement_with_zero_score_items(self):
        # Items sharing no keyword with the query score an exact 0 and
        # are the most eligible victims; ties break on ascending id.
        idx = LocalVsmIndex(DIM)
        idx.add(make_item(7, {0: 1.0}))
        idx.add(make_item(3, {9: 1.0}))
        idx.add(make_item(5, {9: 2.0}))
        q = SparseVector.from_mapping({0: 1.0}, DIM)
        ids, scores = idx.score_many([q])
        assert idx.least_similar(q).item_id == 3
        assert int(ids[np.lexsort((ids, scores[0]))[0]]) == 3

    def test_scores_match_query_path(self):
        rng = np.random.default_rng(13)
        idx = LocalVsmIndex(DIM)
        for i in range(40):
            idx.add(rand_item(rng, i))
        queries = [rand_query(rng) for _ in range(8)]
        ids, scores = idx.score_many(queries)
        cols = {int(iid): j for j, iid in enumerate(ids)}
        for q, row in zip(queries, scores):
            for h in idx.query(q):
                assert row[cols[h.item.item_id]] == h.score


class TestScratchCleanup:
    """Regression: a kernel failure mid-score must not leave the shared
    dense scratch dirty (it would corrupt every later score)."""

    def test_failed_query_does_not_corrupt_later_scores(self, monkeypatch):
        idx = LocalVsmIndex(DIM)
        idx.add(make_item(1, {0: 1.0, 3: 2.0}))
        idx.add(make_item(2, {0: 2.0, 5: 1.0}))
        q_fail = SparseVector.from_mapping({0: 9.0, 3: 9.0}, DIM)
        q_later = SparseVector.from_mapping({5: 1.0}, DIM)
        expect = [(h.item.item_id, h.score) for h in idx.query(q_later)]

        def boom(*args, **kwargs):
            raise RuntimeError("kernel failure")

        # Fail *after* q_fail has been scattered into the scratch; its
        # stale weights at keywords 0/3 would inflate every later score.
        with monkeypatch.context() as m:
            m.setattr(np, "multiply", boom)
            with pytest.raises(RuntimeError):
                idx.query(q_fail)
        got = [(h.item.item_id, h.score) for h in idx.query(q_later)]
        assert got == expect

    def test_scratch_zeroed_after_failure(self):
        idx = LocalVsmIndex(DIM)
        idx.add(
            StoredItem(
                1,
                0,
                0,
                np.array([DIM + 9], dtype=np.int64),
                np.array([1.0], dtype=np.float64),
            )
        )
        with pytest.raises(IndexError):
            idx.query(SparseVector.from_mapping({2: 5.0}, DIM))
        assert not idx._scratch.any()  # noqa: SLF001 - the regression itself


class TestRemoveManyDuplicates:
    """Regression: duplicate ids in remove_many removed once, unknown ids
    rejected before any mutation."""

    def build(self):
        state = NodeState(DIM)
        state.add(make_item(1, {0: 1.0}, angle_key=10))
        state.add(make_item(2, {1: 1.0}, angle_key=20))
        state.add(make_item(3, {2: 1.0}, angle_key=30))
        return state

    def test_duplicate_ids_removed_once(self):
        state = self.build()
        out = state.remove_many([1, 2, 1, 1])
        assert [it.item_id for it in out] == [1, 2]
        ladder, items = state.snapshot()
        assert sorted(items) == [3]
        assert ladder == [(30, 3)]
        assert state.min_angle_item().item_id == 3

    def test_unknown_id_fails_before_mutation(self):
        state = self.build()
        with pytest.raises(KeyError):
            state.remove_many([1, 99])
        ladder, items = state.snapshot()
        assert sorted(items) == [1, 2, 3]
        assert ladder == [(10, 1), (20, 2), (30, 3)]

    def test_empty_and_index_level_dedupe(self):
        state = self.build()
        assert state.remove_many([]) == []
        idx = state.index
        assert [it.item_id for it in idx.remove_many([3, 3])] == [3]
        assert 3 not in idx


class TestBulkScalarEquivalence:
    """add_many / remove_many end states equal their scalar loops."""

    @pytest.mark.parametrize("seed", [20, 21])
    def test_add_many_matches_scalar_loop(self, seed):
        rng = np.random.default_rng(seed)
        items = [rand_item(rng, i % 15) for i in range(40)]  # heavy dup load
        bulk = NodeState(DIM)
        bulk.add_many(items)
        scalar = NodeState(DIM)
        for it in items:
            scalar.add(it)
        assert bulk.snapshot() == scalar.snapshot()
        q = rand_query(rng)
        pairs = lambda hits: [(h.item.item_id, h.score) for h in hits]  # noqa: E731
        assert pairs(bulk.index.query(q)) == pairs(scalar.index.query(q))

    def test_add_many_precomputed_norms_match(self):
        rng = np.random.default_rng(22)
        items = [rand_item(rng, i) for i in range(10)]
        norms = [math.sqrt(it.weights.dot(it.weights)) for it in items]
        with_norms = LocalVsmIndex(DIM)
        with_norms.add_many(items, norms)
        without = LocalVsmIndex(DIM)
        without.add_many(items)
        q = rand_query(rng)
        pairs = lambda hits: [(h.item.item_id, h.score) for h in hits]  # noqa: E731
        assert pairs(with_norms.query(q)) == pairs(without.query(q))
        for it in items:
            assert with_norms.norm_of(it.item_id) == without.norm_of(it.item_id)
        assert with_norms.norms_of_many([it.item_id for it in items]) == norms
