"""Unit tests for keyword dictionaries (§3.7)."""

import pytest

from repro.vsm.dictionary import Dictionary, DictionaryFullError


class TestGrowable:
    def test_register_assigns_sequential_ids(self):
        d = Dictionary()
        assert d.register("a") == 0
        assert d.register("b") == 1
        assert d.register("a") == 0  # idempotent

    def test_dim_tracks_registrations(self):
        d = Dictionary()
        assert d.dim == 1  # never zero-dimensional
        d.register("a")
        d.register("b")
        assert d.dim == 2

    def test_generation_bumps_on_growth(self):
        d = Dictionary()
        g0 = d.generation
        d.register("a")
        assert d.generation > g0
        g1 = d.generation
        d.register("a")
        assert d.generation == g1  # re-register: no growth

    def test_lookup(self):
        d = Dictionary.from_words(["x", "y"])
        assert d.id_of("y") == 1
        assert d.word_of(0) == "x"
        assert d.ids_of(["y", "x"]) == [1, 0]
        with pytest.raises(KeyError):
            d.id_of("z")
        with pytest.raises(KeyError):
            d.word_of(5)

    def test_container_protocol(self):
        d = Dictionary.from_words(["x", "y"])
        assert "x" in d and "z" not in d
        assert len(d) == 2
        assert list(d) == ["x", "y"]

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            Dictionary().register("")


class TestUniversal:
    def test_dim_fixed_regardless_of_registrations(self):
        d = Dictionary.universal(100)
        assert d.dim == 100
        d.register("a")
        assert d.dim == 100
        assert d.n_registered == 1

    def test_generation_stable(self):
        d = Dictionary.universal(10)
        g = d.generation
        d.register("a")
        assert d.generation == g  # dim never changes → no republish signal

    def test_capacity_enforced(self):
        d = Dictionary.universal(2)
        d.register("a")
        d.register("b")
        with pytest.raises(DictionaryFullError):
            d.register("c")
        assert d.register("a") == 0  # existing still fine

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Dictionary.universal(0)

    def test_is_universal_flag(self):
        assert Dictionary.universal(5).is_universal
        assert not Dictionary().is_universal
