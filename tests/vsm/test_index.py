"""Unit tests for the per-node local VSM index."""

import numpy as np
import pytest

from repro.sim.node import StoredItem
from repro.vsm.index import LocalVsmIndex
from repro.vsm.sparse import SparseVector

DIM = 20


def item(item_id, mapping):
    ids = np.array(sorted(mapping), dtype=np.int64)
    w = np.array([mapping[i] for i in ids], dtype=np.float64)
    return StoredItem(item_id, 0, 0, ids, w)


def query(mapping):
    return SparseVector.from_mapping(mapping, DIM)


class TestMaintenance:
    def test_add_and_len(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        idx.add(item(2, {1: 1.0}))
        assert len(idx) == 2
        assert 1 in idx and 3 not in idx

    def test_re_add_replaces(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        idx.add(item(1, {5: 2.0}))
        assert len(idx) == 1
        hits = idx.query(query({5: 1.0}))
        assert [h.item.item_id for h in hits] == [1]
        assert idx.query(query({0: 1.0})) == []

    def test_remove_cleans_postings(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0, 3: 1.0}))
        removed = idx.remove(1)
        assert removed.item_id == 1
        assert len(idx) == 0
        assert idx.query(query({0: 1.0})) == []
        with pytest.raises(KeyError):
            idx.remove(1)

    def test_rebuild(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        idx.rebuild([item(2, {1: 1.0}), item(3, {1: 1.0})])
        assert len(idx) == 2
        assert 1 not in idx

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LocalVsmIndex(0)


class TestQuery:
    def build(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0, 1: 1.0}))
        idx.add(item(2, {0: 1.0}))
        idx.add(item(3, {5: 1.0}))
        idx.add(item(4, {0: 1.0, 1: 1.0, 2: 1.0}))
        return idx

    def test_ranking_matches_bruteforce_cosine(self):
        idx = self.build()
        q = query({0: 1.0, 1: 1.0})
        hits = idx.query(q)
        got = [(h.item.item_id, h.score) for h in hits]
        # Brute force over all items.
        def cos(m):
            v = SparseVector.from_mapping(m, DIM)
            return v.cosine(q)

        expect = sorted(
            [
                (1, cos({0: 1.0, 1: 1.0})),
                (2, cos({0: 1.0})),
                (4, cos({0: 1.0, 1: 1.0, 2: 1.0})),
            ],
            key=lambda t: (-t[1], t[0]),
        )
        assert [i for i, _ in got] == [i for i, _ in expect]
        for (gi, gs), (ei, es) in zip(got, expect):
            assert gs == pytest.approx(es)

    def test_non_overlapping_items_excluded(self):
        hits = self.build().query(query({0: 1.0}))
        assert 3 not in [h.item.item_id for h in hits]

    def test_limit(self):
        assert len(self.build().query(query({0: 1.0}), limit=2)) == 2

    def test_require_all_filters(self):
        hits = self.build().query(query({0: 1.0}), require_all=[0, 1])
        assert sorted(h.item.item_id for h in hits) == [1, 4]

    def test_min_score(self):
        idx = self.build()
        q = query({0: 1.0, 1: 1.0})
        strict = idx.query(q, min_score=0.99)
        assert [h.item.item_id for h in strict] == [1]

    def test_empty_query_returns_nothing(self):
        q = SparseVector.from_mapping({}, DIM)
        assert self.build().query(q) == []


class TestQueryMany:
    """query_many(queries)[i] must equal query(queries[i]) exactly — the
    batch read path's bulk-scoring contract."""

    def build(self, seed=0, n_items=30):
        rng = np.random.default_rng(seed)
        idx = LocalVsmIndex(DIM)
        for iid in range(n_items):
            k = int(rng.integers(1, 5))
            kws = sorted(rng.choice(DIM, size=k, replace=False).tolist())
            idx.add(item(iid, {kw: float(w) for kw, w in
                             zip(kws, rng.uniform(0.2, 2.0, size=k))}))
        return rng, idx

    def rand_query(self, rng):
        k = int(rng.integers(1, 4))
        kws = rng.choice(DIM, size=k, replace=False).tolist()
        return query(dict(zip(kws, rng.uniform(0.2, 2.0, size=k))))

    def pairs(self, hits):
        return [(h.item.item_id, h.score) for h in hits]

    def test_matches_scalar_exactly(self):
        rng, idx = self.build()
        queries = [self.rand_query(rng) for _ in range(12)]
        queries[5] = queries[0]  # duplicate content exercises the memo
        for limit in (None, 3):
            batch = idx.query_many(queries, limit=limit)
            for q, hits in zip(queries, batch):
                assert self.pairs(hits) == self.pairs(idx.query(q, limit=limit))

    def test_matches_scalar_with_filters(self):
        rng, idx = self.build(seed=3)
        queries = [self.rand_query(rng) for _ in range(8)]
        kw = int(queries[0].indices[0])
        batch = idx.query_many(queries, require_all=[kw], min_score=0.1)
        for q, hits in zip(queries, batch):
            assert self.pairs(hits) == self.pairs(
                idx.query(q, require_all=[kw], min_score=0.1)
            )

    def test_mutation_invalidates_snapshot(self):
        rng, idx = self.build(seed=5)
        q = self.rand_query(rng)
        before = idx.query_many([q])[0]
        assert self.pairs(before) == self.pairs(idx.query(q))
        idx.add(item(999, {int(q.indices[0]): 5.0}))
        after = idx.query_many([q])[0]
        assert 999 in [h.item.item_id for h in after]
        idx.remove(999)
        again = idx.query_many([q])[0]
        assert self.pairs(again) == self.pairs(before)

    def test_duplicate_results_are_independent_lists(self):
        rng, idx = self.build(seed=7)
        q = self.rand_query(rng)
        a, b = idx.query_many([q, q])
        assert a is not b and self.pairs(a) == self.pairs(b)

    def test_empty_batch_and_empty_index(self):
        assert LocalVsmIndex(DIM).query_many([]) == []
        assert LocalVsmIndex(DIM).query_many([query({1: 1.0})]) == [[]]


class TestLeastSimilar:
    def test_picks_lowest_cosine(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        idx.add(item(2, {0: 1.0, 9: 5.0}))
        idx.add(item(3, {9: 1.0}))
        victim = idx.least_similar(query({0: 1.0}))
        assert victim.item_id == 3  # no overlap → score 0

    def test_tie_breaks_on_lowest_id(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(5, {7: 1.0}))
        idx.add(item(2, {8: 1.0}))
        victim = idx.least_similar(query({0: 1.0}))
        assert victim.item_id == 2

    def test_empty_index_returns_none(self):
        assert LocalVsmIndex(DIM).least_similar(query({0: 1.0})) is None


class TestItemsWithAllKeywords:
    def test_conjunction(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0, 1: 1.0}))
        idx.add(item(2, {0: 1.0}))
        idx.add(item(3, {0: 1.0, 1: 1.0, 2: 1.0}))
        hits = idx.items_with_all_keywords([0, 1])
        assert [i.item_id for i in hits] == [1, 3]

    def test_empty_keyword_list(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        assert idx.items_with_all_keywords([]) == []

    def test_unknown_keyword(self):
        idx = LocalVsmIndex(DIM)
        idx.add(item(1, {0: 1.0}))
        assert idx.items_with_all_keywords([15]) == []
