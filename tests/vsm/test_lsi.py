"""Unit tests for latent semantic indexing."""

import numpy as np
import pytest

from repro.sim.node import StoredItem
from repro.vsm.lsi import LsiIndex
from repro.vsm.sparse import SparseVector

DIM = 30


def item(item_id, mapping):
    ids = np.array(sorted(mapping), dtype=np.int64)
    w = np.array([mapping[i] for i in ids], dtype=np.float64)
    return StoredItem(item_id, 0, 0, ids, w)


def query(mapping):
    return SparseVector.from_mapping(mapping, DIM)


class TestFit:
    def test_unfitted_query_raises(self):
        with pytest.raises(RuntimeError):
            LsiIndex(DIM).query(query({0: 1.0}))

    def test_fit_empty_is_noop(self):
        idx = LsiIndex(DIM)
        idx.fit([])
        assert not idx.fitted

    def test_rank_clipped_for_small_snapshots(self):
        idx = LsiIndex(DIM, rank=16)
        idx.fit([item(1, {0: 1.0, 1: 2.0}), item(2, {1: 1.0})])
        assert idx.fitted
        # Should not raise despite rank 16 > min(2 items, 2 terms).
        idx.query(query({0: 1.0}))

    def test_degenerate_single_item(self):
        idx = LsiIndex(DIM, rank=4)
        idx.fit([item(1, {0: 1.0})])
        hits = idx.query(query({0: 1.0}))
        assert hits and hits[0][0] == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LsiIndex(0)
        with pytest.raises(ValueError):
            LsiIndex(DIM, rank=0)


class TestQuery:
    def build(self):
        # Two latent "topics": {0,1,2} and {10,11,12}.
        items = [
            item(1, {0: 1.0, 1: 1.0}),
            item(2, {1: 1.0, 2: 1.0}),
            item(3, {0: 1.0, 2: 1.0}),
            item(4, {10: 1.0, 11: 1.0}),
            item(5, {11: 1.0, 12: 1.0}),
        ]
        idx = LsiIndex(DIM, rank=2)
        idx.fit(items)
        return idx

    def test_exact_term_query_prefers_its_topic(self):
        hits = self.build().query(query({0: 1.0}))
        top3 = [i for i, _ in hits[:3]]
        assert set(top3) == {1, 2, 3}

    def test_latent_generalisation_across_cooccurring_terms(self):
        # Query term 1 only; item 3 shares no literal term with the
        # query but lives in the same latent topic.
        hits = dict(self.build().query(query({1: 1.0})))
        assert hits[3] > hits.get(4, -1.0)
        assert hits[3] > 0.3

    def test_limit(self):
        assert len(self.build().query(query({0: 1.0}), limit=2)) == 2

    def test_unknown_terms_give_empty(self):
        assert self.build().query(query({25: 1.0})) == []

    def test_scores_sorted_descending(self):
        scores = [s for _, s in self.build().query(query({0: 1.0, 1: 1.0}))]
        assert scores == sorted(scores, reverse=True)
