"""Unit tests for similarity measures."""

import math

import numpy as np
import pytest

from repro.vsm.similarity import (
    angle_between,
    cosine_similarity,
    is_similar,
    matches_all_keywords,
    rank_by_cosine,
    top_k_items,
)
from repro.vsm.sparse import Corpus, SparseVector

DIM = 10


def vec(mapping):
    return SparseVector.from_mapping(mapping, DIM)


class TestAngles:
    def test_identical_vectors_zero_angle(self):
        v = vec({1: 2.0, 3: 1.0})
        assert angle_between(v, v) == pytest.approx(0.0, abs=1e-7)

    def test_orthogonal_vectors_right_angle(self):
        assert angle_between(vec({0: 1.0}), vec({1: 1.0})) == pytest.approx(math.pi / 2)

    def test_zero_vector_convention(self):
        assert angle_between(vec({}), vec({1: 1.0})) == pytest.approx(math.pi / 2)

    def test_is_similar_threshold(self):
        a, b = vec({0: 1.0, 1: 1.0}), vec({0: 1.0, 1: 0.9})
        assert is_similar(a, b, tau=0.5)
        assert not is_similar(a, vec({5: 1.0}), tau=0.5)

    def test_is_similar_tau_validated(self):
        with pytest.raises(ValueError):
            is_similar(vec({0: 1.0}), vec({0: 1.0}), tau=0.0)
        with pytest.raises(ValueError):
            is_similar(vec({0: 1.0}), vec({0: 1.0}), tau=4.0)

    def test_cosine_similarity_alias(self):
        a, b = vec({0: 1.0}), vec({0: 2.0})
        assert cosine_similarity(a, b) == pytest.approx(1.0)


class TestRanking:
    def make_corpus(self):
        return Corpus.from_vectors(
            [
                vec({0: 1.0, 1: 1.0}),  # item 0
                vec({0: 1.0}),  # item 1: identical direction to query
                vec({5: 1.0}),  # item 2: orthogonal
                vec({0: 1.0, 9: 3.0}),  # item 3: partial
            ]
        )

    def test_rank_by_cosine_order(self):
        order = rank_by_cosine(self.make_corpus(), vec({0: 1.0}))
        assert order[0] == 1
        assert order[-1] == 2

    def test_rank_deterministic_ties(self):
        c = Corpus.from_vectors([vec({0: 1.0}), vec({0: 2.0}), vec({1: 1.0})])
        order = rank_by_cosine(c, vec({0: 1.0}))
        assert list(order) == [0, 1, 2]  # tie between 0,1 breaks by id

    def test_top_k_matches_full_ranking(self):
        c = self.make_corpus()
        q = vec({0: 1.0})
        full = rank_by_cosine(c, q)
        top2 = top_k_items(c, q, 2)
        assert [i for i, _ in top2] == list(full[:2])

    def test_top_k_clipped_to_corpus(self):
        c = self.make_corpus()
        assert len(top_k_items(c, vec({0: 1.0}), 100)) == 4

    def test_top_k_k_validated(self):
        with pytest.raises(ValueError):
            top_k_items(self.make_corpus(), vec({0: 1.0}), 0)

    def test_top_k_scores_descending(self):
        scores = [s for _, s in top_k_items(self.make_corpus(), vec({0: 1.0, 1: 0.5}), 4)]
        assert scores == sorted(scores, reverse=True)


class TestExactMatch:
    def test_matches_all_keywords(self):
        v = vec({1: 1.0, 2: 1.0, 3: 1.0})
        assert matches_all_keywords(v, [1, 2])
        assert not matches_all_keywords(v, [1, 7])
