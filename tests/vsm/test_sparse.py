"""Unit + property tests for sparse vectors and corpora."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vsm.sparse import Corpus, SparseVector

DIM = 50


def vec(mapping, dim=DIM):
    return SparseVector.from_mapping(mapping, dim)


@st.composite
def sparse_vectors(draw, dim=DIM, max_nnz=8):
    n = draw(st.integers(min_value=0, max_value=max_nnz))
    idx = draw(
        st.lists(st.integers(0, dim - 1), min_size=n, max_size=n, unique=True)
    )
    vals = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return SparseVector.from_pairs(zip(idx, vals), dim)


class TestSparseVectorValidation:
    def test_unsorted_indices_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([3, 1]), np.array([1.0, 1.0]), DIM)

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1, 1]), np.array([1.0, 1.0]), DIM)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([DIM]), np.array([1.0]), DIM)
        with pytest.raises(ValueError):
            SparseVector(np.array([-1]), np.array([1.0]), DIM)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1]), np.array([0.0]), DIM)
        with pytest.raises(ValueError):
            SparseVector(np.array([1]), np.array([-2.0]), DIM)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1, 2]), np.array([1.0]), DIM)

    def test_from_pairs_sums_duplicates(self):
        v = SparseVector.from_pairs([(3, 1.0), (3, 2.0), (1, 1.0)], DIM)
        assert v.weight_of(3) == 3.0
        assert v.nnz == 2

    def test_binary_constructor(self):
        v = SparseVector.binary([4, 2, 2], DIM)
        assert v.nnz == 2
        assert v.weight_of(2) == 2.0  # duplicate summed


class TestSparseVectorOps:
    def test_norm(self):
        assert vec({0: 3.0, 1: 4.0}).norm() == pytest.approx(5.0)
        assert vec({}).norm() == 0.0

    def test_dot_disjoint_is_zero(self):
        assert vec({0: 1.0}).dot(vec({1: 1.0})) == 0.0

    def test_dot_overlap(self):
        assert vec({0: 2.0, 3: 1.0}).dot(vec({3: 4.0, 9: 5.0})) == pytest.approx(4.0)

    def test_dot_dim_mismatch(self):
        with pytest.raises(ValueError):
            vec({0: 1.0}).dot(vec({0: 1.0}, dim=DIM + 1))

    def test_cosine_identical_is_one(self):
        v = vec({1: 2.0, 5: 3.0})
        assert v.cosine(v) == pytest.approx(1.0)

    def test_cosine_zero_vector_is_zero(self):
        assert vec({}).cosine(vec({1: 1.0})) == 0.0

    def test_contains_all(self):
        v = vec({1: 1.0, 2: 1.0, 3: 1.0})
        assert v.contains_all([1, 3])
        assert not v.contains_all([1, 4])
        assert v.contains_all([])

    def test_to_dense_round_trip(self):
        v = vec({2: 5.0, 7: 1.5})
        dense = v.to_dense()
        assert dense[2] == 5.0 and dense[7] == 1.5
        assert dense.sum() == pytest.approx(6.5)

    def test_scaled(self):
        v = vec({1: 2.0}).scaled(3.0)
        assert v.weight_of(1) == 6.0
        with pytest.raises(ValueError):
            v.scaled(0)

    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=100)
    def test_dot_symmetric_and_matches_dense(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a))
        assert a.dot(b) == pytest.approx(float(a.to_dense() @ b.to_dense()), rel=1e-9)

    @given(sparse_vectors())
    @settings(max_examples=100)
    def test_cosine_bounded(self, v):
        w = vec({0: 1.0, 1: 2.0})
        c = v.cosine(w)
        assert -1e-9 <= c <= 1 + 1e-9

    @given(sparse_vectors())
    @settings(max_examples=50)
    def test_cauchy_schwarz(self, v):
        w = vec({0: 3.0, 5: 1.0})
        assert abs(v.dot(w)) <= v.norm() * w.norm() + 1e-9


class TestCorpus:
    def make(self):
        return Corpus.from_baskets(
            [[0, 2], [1], [0, 1, 2], []], 4, [[1.0, 2.0], [3.0], [1.0, 1.0, 1.0], []]
        )

    def test_shape(self):
        c = self.make()
        assert c.n_items == 4
        assert c.dim == 4
        assert len(c) == 4

    def test_nnz_per_item(self):
        assert list(self.make().nnz_per_item()) == [2, 1, 3, 0]

    def test_keyword_frequencies(self):
        assert list(self.make().keyword_frequencies()) == [2, 2, 2, 0]

    def test_norms(self):
        norms = self.make().norms()
        assert norms[0] == pytest.approx(np.sqrt(5.0))
        assert norms[3] == 0.0

    def test_vector_round_trip(self):
        c = self.make()
        v = c.vector(0)
        assert list(v.indices) == [0, 2]
        assert list(v.values) == [1.0, 2.0]
        with pytest.raises(IndexError):
            c.vector(4)

    def test_items_with_keyword(self):
        c = self.make()
        assert list(c.items_with_keyword(0)) == [0, 2]
        assert list(c.items_with_keyword(3)) == []
        with pytest.raises(IndexError):
            c.items_with_keyword(99)

    def test_cosine_against_matches_pairwise(self):
        c = self.make()
        q = SparseVector.from_mapping({0: 1.0, 1: 1.0}, 4)
        sims = c.cosine_against(q)
        for i in range(c.n_items):
            assert sims[i] == pytest.approx(c.vector(i).cosine(q))

    def test_cosine_against_dim_mismatch(self):
        with pytest.raises(ValueError):
            self.make().cosine_against(SparseVector.binary([0], 7))

    def test_subsample(self):
        sub = self.make().subsample([2, 0])
        assert sub.n_items == 2
        assert list(sub.vector(0).indices) == [0, 1, 2]

    def test_from_vectors(self):
        vs = [vec({0: 1.0}, 4), vec({1: 2.0}, 4)]
        c = Corpus.from_vectors(vs)
        assert c.n_items == 2
        assert c.vector(1).weight_of(1) == 2.0

    def test_from_vectors_dim_mismatch(self):
        with pytest.raises(ValueError):
            Corpus.from_vectors([vec({0: 1.0}, 4), vec({0: 1.0}, 5)])

    def test_from_vectors_empty_rejected(self):
        with pytest.raises(ValueError):
            Corpus.from_vectors([])

    def test_nonpositive_weights_rejected(self):
        import scipy.sparse as sp

        mat = sp.csr_matrix(np.array([[1.0, -1.0], [0.0, 2.0]]))
        with pytest.raises(ValueError):
            Corpus(mat)

    def test_row_slices(self):
        rows = list(self.make().row_slices())
        assert rows[0][0] == 0
        assert list(rows[0][1]) == [0, 2]
        assert rows[3][1].size == 0
