"""Unit tests for the text → vector pipeline."""

import numpy as np
import pytest

from repro.vsm.dictionary import Dictionary
from repro.vsm.text import DEFAULT_STOPWORDS, TextVectorizer, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Peer-to-Peer Overlay Routing!") == [
            "peer-to-peer",
            "overlay",
            "routing",
        ]

    def test_min_length(self):
        assert tokenize("a bb ccc", min_length=3) == ["ccc"]

    def test_numbers_kept(self):
        assert tokenize("ipv4 2003") == ["ipv4", "2003"]

    def test_apostrophes(self):
        assert tokenize("overlay's design") == ["overlay's", "design"]

    def test_empty(self):
        assert tokenize("... !!! ??") == []


class TestVectorizer:
    def make(self, capacity=None):
        return TextVectorizer(Dictionary(capacity=capacity))

    def test_vector_registers_terms(self):
        vec = self.make()
        v = vec.vector("structured overlay routing")
        assert v.nnz == 3
        assert "overlay" in vec.dictionary

    def test_stopwords_removed(self):
        vec = self.make()
        v = vec.vector("the overlay is a system")
        words = {vec.dictionary.word_of(int(i)) for i in v.indices}
        assert words == {"overlay", "system"}
        assert not words & DEFAULT_STOPWORDS

    def test_repeated_terms_weighted_sublinearly(self):
        vec = self.make()
        v = vec.vector("cache cache cache miss")
        cache_id = vec.dictionary.id_of("cache")
        miss_id = vec.dictionary.id_of("miss")
        assert v.weight_of(cache_id) > v.weight_of(miss_id)
        # Sublinear: 3 occurrences weigh less than 3×.
        assert v.weight_of(cache_id) < 3 * v.weight_of(miss_id)

    def test_fit_gives_idf_weights(self):
        vec = self.make()
        docs = ["overlay routing"] * 9 + ["overlay quorum"]
        vec.fit(docs)
        assert vec.n_documents == 10
        common = vec.dictionary.id_of("overlay")
        rare = vec.dictionary.id_of("quorum")
        assert vec.idf(rare) > vec.idf(common)

    def test_query_never_registers(self):
        vec = self.make()
        vec.fit(["overlay routing"])
        before = len(vec.dictionary)
        q = vec.query("overlay zebra")
        assert len(vec.dictionary) == before
        assert q.nnz == 1  # zebra unknown → dropped

    def test_universal_dictionary_overflow_drops_new_terms(self):
        vec = TextVectorizer(Dictionary.universal(2))
        v1 = vec.vector("alpha beta")
        assert v1.nnz == 2
        v2 = vec.vector("alpha gamma")  # gamma doesn't fit
        assert v2.nnz == 1

    def test_all_stopword_document_is_zero_vector(self):
        v = self.make().vector("the and of")
        assert v.is_zero

    def test_corpus_alignment(self):
        vec = self.make()
        docs = ["overlay routing", "the of and", "cache coherence"]
        corpus = vec.corpus(docs)
        assert corpus.n_items == 3
        assert corpus.nnz_per_item()[1] == 0  # empty row kept, ids aligned

    def test_similar_documents_have_high_cosine(self):
        vec = self.make()
        docs = [
            "distributed hash table routing overlay",
            "overlay routing with distributed hash table",
            "gradient descent neural network training",
        ]
        vec.fit(docs)
        corpus = vec.corpus(docs, register=False)
        sims = corpus.cosine_against(corpus.vector(0))
        assert sims[1] > 0.9
        assert sims[2] < 0.1


class TestEndToEnd:
    def test_published_text_corpus_searchable(self):
        from repro.core import Meteorograph, MeteorographConfig, PlacementScheme

        vec = TextVectorizer(Dictionary.universal(512))
        docs = [
            "peer to peer overlay storage network",
            "structured overlay similarity search",
            "database transaction logging recovery",
            "peer overlay search with similarity ranking",
        ]
        vec.fit(docs)
        corpus = vec.corpus(docs, register=False)
        rng = np.random.default_rng(0)
        system = Meteorograph.build(
            30, corpus.dim, rng=rng,
            config=MeteorographConfig(scheme=PlacementScheme.NONE),
        )
        system.publish_corpus(corpus, rng)
        q = vec.query("overlay similarity search")
        res = system.retrieve(system.random_origin(rng), q, 2)
        assert res.found >= 1
        assert set(res.item_ids()) <= {0, 1, 3}
