"""Unit tests for real-trace loading."""

import io

import pytest

from repro.workload.loader import baskets_to_corpus, load_basket_lines, load_pairs_csv


class TestPairsCsv:
    def test_basic_load(self):
        data = io.StringIO("c1,o1\nc1,o2\nc2,o1\n")
        trace = load_pairs_csv(data)
        assert trace.n_clients == 2
        assert trace.n_objects == 2
        assert trace.client_ids == ["c1", "c2"]
        assert list(trace.corpus.nnz_per_item()) == [2, 1]

    def test_duplicates_collapse(self):
        data = io.StringIO("c1,o1\nc1,o1\nc1,o1\n")
        trace = load_pairs_csv(data)
        assert list(trace.corpus.nnz_per_item()) == [1]

    def test_comments_and_blanks_skipped(self):
        data = io.StringIO("# log\n\nc1,o1\n")
        assert load_pairs_csv(data).n_clients == 1

    def test_header_skip(self):
        data = io.StringIO("client,object\nc1,o1\n")
        trace = load_pairs_csv(data, skip_header=True)
        assert trace.n_clients == 1

    def test_max_rows(self):
        data = io.StringIO("c1,o1\nc2,o2\nc3,o3\n")
        assert load_pairs_csv(data, max_rows=2).n_clients == 2

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            load_pairs_csv(io.StringIO("justonefield\n"))
        with pytest.raises(ValueError):
            load_pairs_csv(io.StringIO("c1,\n"))

    def test_custom_delimiter(self):
        data = io.StringIO("c1\to1\n")
        assert load_pairs_csv(data, delimiter="\t").n_objects == 1

    def test_file_path(self, tmp_path):
        p = tmp_path / "trace.csv"
        p.write_text("c1,o1\nc2,o2\n")
        assert load_pairs_csv(p).n_clients == 2


class TestBasketLines:
    def test_basic_load(self):
        data = io.StringIO("c1: o1 o2 o3\nc2: o1\n")
        trace = load_basket_lines(data)
        assert trace.n_clients == 2
        assert list(trace.corpus.nnz_per_item()) == [3, 1]

    def test_repeated_client_merges(self):
        data = io.StringIO("c1: o1\nc1: o2\n")
        trace = load_basket_lines(data)
        assert trace.n_clients == 1
        assert list(trace.corpus.nnz_per_item()) == [2]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            load_basket_lines(io.StringIO("no separator here\n"))
        with pytest.raises(ValueError):
            load_basket_lines(io.StringIO("c1:\n"))


class TestBasketsToCorpus:
    def test_dense_reindexing_sorted(self):
        trace = baskets_to_corpus({"z": {"o9"}, "a": {"o1", "o9"}})
        assert trace.client_ids == ["a", "z"]
        assert trace.object_ids == ["o1", "o9"]
        v = trace.corpus.vector(0)
        assert list(v.indices) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            baskets_to_corpus({})

    def test_loaded_trace_feeds_stats(self):
        from repro.workload.stats import trace_statistics

        trace = baskets_to_corpus({"c1": {"a", "b"}, "c2": {"a"}})
        stats = trace_statistics(trace.corpus)
        assert stats.n_items == 2
        assert stats.mean_basket == pytest.approx(1.5)

    def test_loaded_trace_publishable(self):
        import numpy as np

        from repro.core import Meteorograph, MeteorographConfig, PlacementScheme

        trace = baskets_to_corpus(
            {f"c{i}": {f"o{i % 5}", f"o{(i + 1) % 5}"} for i in range(40)}
        )
        rng = np.random.default_rng(0)
        system = Meteorograph.build(
            16, trace.corpus.dim, rng=rng,
            config=MeteorographConfig(scheme=PlacementScheme.NONE),
        )
        system.publish_corpus(trace.corpus, rng)
        assert system.network.total_items() == 40
