"""Unit tests for query generation and ground truth."""

import numpy as np
import pytest

from repro.vsm.sparse import Corpus
from repro.workload.queries import (
    item_query,
    keyword_ground_truth,
    keyword_query,
    multi_keyword_query,
    nth_popular_keyword,
)
from repro.workload.worldcup import WorldCupParams, generate_trace


def corpus():
    # keyword frequencies: 0 → 3, 1 → 2, 2 → 1, 3 → 0
    return Corpus.from_baskets([[0, 1], [0, 1, 2], [0]], 4)


class TestNthPopular:
    def test_ranking(self):
        c = corpus()
        assert nth_popular_keyword(c, 1) == 0
        assert nth_popular_keyword(c, 2) == 1
        assert nth_popular_keyword(c, 3) == 2

    def test_tie_breaks_by_id(self):
        c = Corpus.from_baskets([[0, 1]], 4)
        assert nth_popular_keyword(c, 1) == 0
        assert nth_popular_keyword(c, 2) == 1

    def test_max_matches_cap(self):
        c = corpus()
        # With cap 2, keyword 0 (freq 3) is excluded.
        assert nth_popular_keyword(c, 1, max_matches=2) == 1

    def test_bounds(self):
        with pytest.raises(ValueError):
            nth_popular_keyword(corpus(), 0)
        with pytest.raises(ValueError):
            nth_popular_keyword(corpus(), 99)

    def test_cap_exhausts_candidates(self):
        with pytest.raises(ValueError):
            nth_popular_keyword(corpus(), 4, max_matches=2)


class TestQueryVectors:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WorldCupParams(n_items=200, n_keywords=80), seed=5)

    def test_keyword_query_uses_trace_weights(self, trace):
        q = keyword_query(trace, [3, 1])
        assert list(q.indices) == [1, 3]
        assert np.allclose(q.values, trace.keyword_weights[[1, 3]])

    def test_keyword_query_empty_rejected(self, trace):
        with pytest.raises(ValueError):
            keyword_query(trace, [])

    def test_item_query_is_item_vector(self, trace):
        q = item_query(trace.corpus, 5)
        v = trace.corpus.vector(5)
        assert np.array_equal(q.indices, v.indices)

    def test_multi_keyword_query_matches_source(self, trace):
        rng = np.random.default_rng(0)
        q, src = multi_keyword_query(trace, rng, n_keywords=3)
        assert q.nnz == 3
        assert trace.corpus.vector(src).contains_all(q.indices)


class TestGroundTruth:
    def test_single_keyword(self):
        gt = keyword_ground_truth(corpus(), [1])
        assert list(gt.matching_items) == [0, 1]
        assert gt.total == 2

    def test_conjunction(self):
        gt = keyword_ground_truth(corpus(), [1, 2])
        assert list(gt.matching_items) == [1]

    def test_no_matches(self):
        assert keyword_ground_truth(corpus(), [3]).total == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            keyword_ground_truth(corpus(), [])
