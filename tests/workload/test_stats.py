"""Unit tests for Table 1 statistics and the Fig. 6 profile."""

import numpy as np
import pytest

from repro.vsm.sparse import Corpus
from repro.workload.stats import basket_size_profile, table1_rows, trace_statistics


def corpus():
    return Corpus.from_baskets([[0, 1, 2], [0], [1, 2], [3, 4, 5, 6]], 10)


class TestTraceStatistics:
    def test_fields(self):
        s = trace_statistics(corpus())
        assert s.n_items == 4
        assert s.n_keywords_used == 7
        assert s.n_keywords_space == 10
        assert s.mean_basket == pytest.approx(2.5)
        assert s.max_basket == 4
        assert s.min_basket == 1

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics(Corpus.from_baskets([], 10))

    def test_rows_formatting(self):
        rows = trace_statistics(corpus()).as_rows()
        assert len(rows) == 5
        assert rows[0] == ("Number of clients", "4")

    def test_table1_rows_convenience(self):
        assert table1_rows(corpus()) == trace_statistics(corpus()).as_rows()


class TestBasketProfile:
    def test_sorted_descending(self):
        profile = basket_size_profile(corpus())
        assert list(profile) == [4, 3, 2, 1]

    def test_matches_nnz(self):
        assert basket_size_profile(corpus()).sum() == corpus().matrix.nnz
