"""Unit tests for the synthetic World Cup trace generator."""

import numpy as np
import pytest

from repro.workload.worldcup import PAPER_SCALE, WorldCupParams, generate_trace


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorldCupParams(n_items=0)
        with pytest.raises(ValueError):
            WorldCupParams(n_keywords=1)
        with pytest.raises(ValueError):
            WorldCupParams(mean_basket=0.5)
        with pytest.raises(ValueError):
            WorldCupParams(sigma=0.0)

    def test_effective_max_basket_capped_by_keywords(self):
        p = WorldCupParams(n_items=10, n_keywords=100, max_basket=500)
        assert p.effective_max_basket == 100

    def test_paper_scale_reference(self):
        assert PAPER_SCALE["n_items"] == 2_760_000
        assert PAPER_SCALE["mean_basket"] == 43


class TestGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(
            WorldCupParams(n_items=3000, n_keywords=800), seed=7
        )

    def test_shape(self, trace):
        assert trace.corpus.n_items == 3000
        assert trace.corpus.dim == 800

    def test_mean_basket_near_target(self, trace):
        assert trace.basket_sizes.mean() == pytest.approx(43.0, rel=0.15)

    def test_min_basket_at_least_one(self, trace):
        assert trace.basket_sizes.min() >= 1

    def test_heavy_tail(self, trace):
        sizes = trace.basket_sizes
        assert sizes.max() > 4 * np.median(sizes)

    def test_baskets_have_distinct_keywords(self, trace):
        for i in (0, 100, 2999):
            v = trace.corpus.vector(i)
            assert len(np.unique(v.indices)) == v.nnz

    def test_popularity_skew(self, trace):
        freqs = trace.corpus.keyword_frequencies()
        top = np.sort(freqs)[::-1]
        # Zipf: top keyword much more frequent than the median keyword.
        assert top[0] > 5 * max(1, np.median(freqs))

    def test_generative_rank_matches_realised_popularity(self, trace):
        freqs = trace.corpus.keyword_frequencies()
        top_id = trace.nth_popular_keyword(1)
        # The generatively-top keyword is among the realised top 3.
        assert freqs[top_id] >= np.sort(freqs)[::-1][2]

    def test_deterministic(self):
        p = WorldCupParams(n_items=200, n_keywords=100)
        a = generate_trace(p, seed=3)
        b = generate_trace(p, seed=3)
        assert (a.corpus.matrix != b.corpus.matrix).nnz == 0
        assert np.array_equal(a.keyword_weights, b.keyword_weights)

    def test_different_seeds_differ(self):
        p = WorldCupParams(n_items=200, n_keywords=100)
        a = generate_trace(p, seed=3)
        b = generate_trace(p, seed=4)
        assert (a.corpus.matrix != b.corpus.matrix).nnz > 0


class TestWeightSchemes:
    def test_binary_weights_are_ones(self):
        t = generate_trace(
            WorldCupParams(n_items=100, n_keywords=60, weight_scheme="binary"), seed=1
        )
        assert np.allclose(t.corpus.matrix.data, 1.0)
        assert np.allclose(t.keyword_weights, 1.0)

    def test_idf_weights_penalise_popular(self):
        t = generate_trace(
            WorldCupParams(n_items=500, n_keywords=100, weight_scheme="idf"), seed=1
        )
        freqs = t.corpus.keyword_frequencies()
        hot = int(np.argmax(freqs))
        cold = int(np.argmin(freqs + (freqs == 0) * 10**9))
        assert t.keyword_weights[hot] < t.keyword_weights[cold]

    def test_random_weights_bounded(self):
        t = generate_trace(
            WorldCupParams(n_items=100, n_keywords=60, weight_scheme="random"), seed=1
        )
        assert t.keyword_weights.min() >= 0.5
        assert t.keyword_weights.max() <= 2.0

    def test_item_weights_match_keyword_weights(self):
        t = generate_trace(
            WorldCupParams(n_items=100, n_keywords=60, weight_scheme="idf"), seed=1
        )
        v = t.corpus.vector(0)
        assert np.allclose(v.values, t.keyword_weights[v.indices])
