"""Unit tests for Zipf sampling."""

import numpy as np
import pytest

from repro.workload.zipf import ZipfSampler, zipf_pmf


class TestPmf:
    def test_normalised(self):
        assert zipf_pmf(100, 0.95).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(50, 1.0)
        assert np.all(np.diff(pmf) < 0)

    def test_zero_exponent_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -1.0)


class TestSampler:
    def test_sample_range(self):
        s = ZipfSampler(20, 0.9)
        out = s.sample(np.random.default_rng(0), 1000)
        assert out.min() >= 0 and out.max() < 20

    def test_rank_identity_without_permutation(self):
        s = ZipfSampler(10, 1.0)
        assert s.id_of_rank(1) == 0
        assert s.id_of_rank(10) == 9

    def test_rank_bounds(self):
        s = ZipfSampler(10, 1.0)
        with pytest.raises(ValueError):
            s.id_of_rank(0)
        with pytest.raises(ValueError):
            s.id_of_rank(11)

    def test_permutation_is_consistent(self):
        rng = np.random.default_rng(5)
        s = ZipfSampler(50, 1.0, rng=rng, permute=True)
        top = s.id_of_rank(1)
        counts = np.bincount(s.sample(np.random.default_rng(1), 20000), minlength=50)
        assert counts.argmax() == top

    def test_permute_requires_rng(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, 1.0, permute=True)

    def test_empirical_frequencies_follow_ranks(self):
        s = ZipfSampler(30, 1.0)
        counts = np.bincount(s.sample(np.random.default_rng(2), 50000), minlength=30)
        # Frequency of rank 1 ≈ 2× rank 2 under s=1.
        assert counts[0] / counts[1] == pytest.approx(2.0, rel=0.15)

    def test_probability_of_id(self):
        s = ZipfSampler(10, 1.0)
        assert s.probability_of_id(0) > s.probability_of_id(9)
        assert s.probability_of_id(0) == pytest.approx(zipf_pmf(10, 1.0)[0])

    def test_deterministic_under_seed(self):
        s = ZipfSampler(20, 0.8)
        a = s.sample(np.random.default_rng(7), 100)
        b = s.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)
