"""Docs ↔ code link check (CI gate).

EXPERIMENTS.md names runnable experiments with the ``**Title
(`id`).**`` convention; every such id must resolve in the
``repro.experiments.ALL_EXPERIMENTS`` registry (which in turn means a
module under ``src/repro/experiments/`` backs it).  Catches the drift
where a doc entry outlives a renamed or deleted experiment — the
failure mode the read-path documentation pass exists to prevent.

Also verifies that every committed ``results/<id>.csv`` whose id is in
the registry is indexed by ``results/manifest.json``, so the artifact
directory stays discoverable.

Three taxonomy checks keep OBSERVABILITY.md honest the same way: every
bench kernel registered in ``repro.obs.bench._LOOPS`` must be named in
the doc (the BENCH workflow section documents each kernel's workload),
every ``lsh.*`` instrument the LSH subsystem emits must appear in the
instrument table, and so must every ``linkfault.*`` /
``maint.antientropy.*`` instrument of the message-plane fault
subsystem and every ``shard.*`` instrument of the sharded simulator.

Run as ``python tools/check_docs.py`` from the repo root (CI does;
``repro`` must be importable — ``pip install -e .`` or
``PYTHONPATH=src``).
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``**X-BUILD (`buildscale`).**`` → ``buildscale``
_ENTRY = re.compile(r"\*\*[^*\n]+\(`([a-z0-9_]+)`\)\.?\*\*")


def main() -> int:
    try:
        from repro.experiments import ALL_EXPERIMENTS
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))
        from repro.experiments import ALL_EXPERIMENTS

    failed: list[str] = []

    text = (ROOT / "EXPERIMENTS.md").read_text()
    documented = set(_ENTRY.findall(text))
    if not documented:
        failed.append("EXPERIMENTS.md: no **Title (`id`).** entries found")
    for exp_id in sorted(documented):
        if exp_id not in ALL_EXPERIMENTS:
            failed.append(
                f"EXPERIMENTS.md documents `{exp_id}` but it is not in "
                "repro.experiments.ALL_EXPERIMENTS"
            )

    from repro.obs.bench import _LOOPS

    obs_text = (ROOT / "OBSERVABILITY.md").read_text()
    for kernel in sorted(_LOOPS):
        if kernel not in obs_text:
            failed.append(
                f"bench kernel `{kernel}` is registered in repro.obs.bench "
                "but not documented in OBSERVABILITY.md"
            )
    # The instrument names the LSH subsystem emits (grep the package for
    # the literals): drift here means the taxonomy table went stale.
    lsh_instruments = (
        "lsh.signatures",
        "lsh.publish.items",
        "lsh.publish.copies",
        "lsh.probe.bands",
        "lsh.probe.candidates",
        "lsh.probe.unioned",
        "retrieve_multiprobe",
    )
    for name in lsh_instruments:
        if name not in obs_text:
            failed.append(
                f"LSH instrument `{name}` is emitted by repro.lsh but not "
                "documented in OBSERVABILITY.md"
            )

    chaos_instruments = (
        "linkfault.dropped",
        "linkfault.partition_dropped",
        "linkfault.duplicated",
        "linkfault.delayed",
        "linkfault.delay_jitter",
        "net.async_dead_dropped",
        "maint.antientropy.pass",
        "maint.antientropy.ticks",
        "maint.antientropy.dirtied",
        "maint.antientropy.reconciled",
        "maint.antientropy.replaced",
        "handoff_lost",
        "reconcile",
    )
    for name in chaos_instruments:
        if name not in obs_text:
            failed.append(
                f"chaos instrument `{name}` is emitted by the message-plane "
                "fault subsystem but not documented in OBSERVABILITY.md"
            )

    shard_instruments = (
        "shard.publish",
        "shard.publish.items",
        "shard.publish.sweep_steps",
        "shard.retrieve",
        "shard.retrieve.queries",
        "shard.retrieve.walk_worst",
    )
    for name in shard_instruments:
        if name not in obs_text:
            failed.append(
                f"shard instrument `{name}` is emitted by repro.sim.shard "
                "but not documented in OBSERVABILITY.md"
            )

    manifest_path = ROOT / "results" / "manifest.json"
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        for csv_path in sorted((ROOT / "results").glob("*.csv")):
            exp_id = csv_path.stem
            if exp_id in ALL_EXPERIMENTS and exp_id not in manifest:
                failed.append(
                    f"results/{csv_path.name} is committed but missing from "
                    "results/manifest.json"
                )

    if failed:
        for line in failed:
            print(f"check_docs: {line}", file=sys.stderr)
        return 1
    print(
        f"check_docs: OK ({len(documented)} documented experiment ids, "
        f"{len(ALL_EXPERIMENTS)} registered)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
